#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "diffusion/realization.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

// --------------------------------------------------- full realizations

TEST(FullRealization, SelectionsAreFriendsOrNobody) {
  Rng rng(1);
  const Graph g =
      gnm_random(30, 60, rng).build(WeightScheme::inverse_degree());
  // Out-parameter overload: one buffer across draws, no per-draw alloc.
  std::vector<NodeId> real;
  for (int rep = 0; rep < 20; ++rep) {
    sample_full_realization(g, rng, real);
    ASSERT_EQ(real.size(), g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (real[v] == kNoNode) continue;
      EXPECT_TRUE(g.has_edge(real[v], v));
    }
  }
}

TEST(FullRealization, OutParamMatchesAllocatingOverloadStream) {
  // Same rng state ⟹ identical draw: the overloads share one sampler.
  Rng build_rng(23);
  const Graph g =
      gnm_random(25, 50, build_rng).build(WeightScheme::inverse_degree());
  Rng rng_a(31), rng_b(31);
  std::vector<NodeId> buf;
  for (int rep = 0; rep < 5; ++rep) {
    sample_full_realization(g, rng_b, buf);
    EXPECT_EQ(sample_full_realization(g, rng_a), buf);
  }
}

TEST(FullRealization, AliasStrategyMatchesWeights) {
  // The SelectionSampler overload with alias tables realizes the same
  // per-node law as the scan (triangle: 0.3 / 0.5 / leftover 0.2).
  Graph::Builder b(3);
  b.add_edge(0, 2, 0.3, 0.1).add_edge(1, 2, 0.5, 0.1);
  const Graph g = b.build_with_explicit_weights();
  const SamplingIndex index(g);
  Rng rng(29);
  std::vector<NodeId> real;
  std::map<NodeId, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sample_full_realization(g, index, rng, real);
    ++counts[real[2]];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[kNoNode] / static_cast<double>(n), 0.2, 0.01);
}

TEST(FullRealization, SelectionFrequenciesMatchWeights) {
  // Node 2's in-weights on a triangle are 0.5 / 0.5; "nobody" has mass 0.
  Graph::Builder b(3);
  b.add_edge(0, 2, 0.3, 0.1).add_edge(1, 2, 0.5, 0.1);
  const Graph g = b.build_with_explicit_weights();
  Rng rng(5);
  std::map<NodeId, int> counts;
  std::vector<NodeId> real;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sample_full_realization(g, rng, real);
    ++counts[real[2]];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[kNoNode] / static_cast<double>(n), 0.2, 0.01);
}

TEST(FullRealization, IsolatedNodesSelectNobody) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build(WeightScheme::inverse_degree());
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sample_full_realization(g, rng)[2], kNoNode);
  }
}

// ------------------------------------------------------------ trace_tg

TEST(TraceTg, ReachingNsIsTypeOne) {
  const auto fx = test::ParallelPathFixture::make(1, 2);
  // s=0, t=1, intermediates 2 (∈ N_s side) and 3.
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  std::vector<NodeId> real(fx.graph.num_nodes(), kNoNode);
  real[1] = 3;  // t selects 3
  real[3] = 2;  // 3 selects 2 ∈ N_s
  const TgSample tg = trace_tg(inst, real);
  EXPECT_TRUE(tg.type1);
  EXPECT_EQ(tg.path, (std::vector<NodeId>{1, 3}));
}

TEST(TraceTg, DeadEndIsTypeZero) {
  const auto fx = test::ParallelPathFixture::make(1, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  std::vector<NodeId> real(fx.graph.num_nodes(), kNoNode);
  real[1] = 3;  // t selects 3, 3 selects nobody
  const TgSample tg = trace_tg(inst, real);
  EXPECT_FALSE(tg.type1);
}

TEST(TraceTg, CycleIsTypeZero) {
  // Cycle among non-friend nodes: t→a→b→t.
  Graph::Builder b(6);
  b.add_edge(0, 1);                                  // s-N_s edge
  b.add_edge(2, 3).add_edge(3, 4).add_edge(4, 2);    // triangle t,a,b
  b.add_edge(1, 2);                                  // connect components
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);  // t = 3
  std::vector<NodeId> real(g.num_nodes(), kNoNode);
  real[3] = 4;
  real[4] = 2;
  real[2] = 3;  // closes the cycle back into the path
  const TgSample tg = trace_tg(inst, real);
  EXPECT_FALSE(tg.type1);
}

TEST(TraceTg, TargetAdjacentToNs) {
  // t's selection lands directly in N_s: path is just {t}.
  Graph::Builder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 2);
  std::vector<NodeId> real(3, kNoNode);
  real[2] = 1;  // 1 ∈ N_s
  const TgSample tg = trace_tg(inst, real);
  EXPECT_TRUE(tg.type1);
  EXPECT_EQ(tg.path, (std::vector<NodeId>{2}));
}

// -------------------------------------------------- reverse path sampler

TEST(ReverseSampler, PathsAreValidWalks) {
  Rng rng(11);
  const Graph g =
      gnm_random(40, 120, rng).build(WeightScheme::inverse_degree());
  // Find a valid instance.
  NodeId s = 0, t = 0;
  bool found = false;
  for (NodeId a = 0; a < 40 && !found; ++a) {
    for (NodeId c = 0; c < 40 && !found; ++c) {
      if (a == c || g.has_edge(a, c) || g.degree(a) == 0) continue;
      s = a;
      t = c;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const FriendingInstance inst(g, s, t);
  ReversePathSampler sampler(inst);
  for (int i = 0; i < 2000; ++i) {
    const TgSample tg = sampler.sample(rng);
    ASSERT_FALSE(tg.path.empty());
    EXPECT_EQ(tg.path.front(), t);
    for (NodeId v : tg.path) {
      EXPECT_NE(v, s);
      EXPECT_FALSE(inst.is_initial_friend(v));
    }
    // Consecutive path nodes must be graph-adjacent (the walk follows
    // selection arcs, which exist only between friends).
    for (std::size_t k = 1; k < tg.path.size(); ++k) {
      EXPECT_TRUE(g.has_edge(tg.path[k - 1], tg.path[k]));
    }
    if (tg.type1) {
      // The walk ended by selecting an N_s node: the last path node must
      // be adjacent to N_s.
      bool adj = false;
      for (NodeId u : g.neighbors(tg.path.back())) {
        if (inst.is_initial_friend(u)) adj = true;
      }
      EXPECT_TRUE(adj);
    }
  }
  EXPECT_EQ(sampler.samples_drawn(), 2000u);
}

TEST(ReverseSampler, TypeOneRateMatchesAnalyticPmax) {
  // Parallel paths: p_max = (1/2)^(len-1).
  for (std::size_t len : {1u, 2u, 3u}) {
    const auto fx = test::ParallelPathFixture::make(3, len);
    const FriendingInstance inst(fx.graph, fx.s, fx.t);
    ReversePathSampler sampler(inst);
    Rng rng(13 + len);
    int type1 = 0;
    const int n = 40'000;
    for (int i = 0; i < n; ++i) type1 += sampler.sample(rng).type1;
    EXPECT_NEAR(type1 / static_cast<double>(n), fx.pmax(), 0.01)
        << "len=" << len;
  }
}

TEST(ReverseSampler, AgreesWithFullRealizationTrace) {
  // The lazy sampler must induce the same distribution over (type,
  // path) as tracing a fully materialized realization.
  Rng rng(17);
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ReversePathSampler sampler(inst);

  auto key_of = [](const TgSample& tg) {
    std::string k = tg.type1 ? "1:" : "0:";
    if (tg.type1) {
      for (NodeId v : tg.path) k += std::to_string(v) + ",";
    }
    return k;
  };

  std::map<std::string, int> lazy_counts, full_counts;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    lazy_counts[key_of(sampler.sample(rng))]++;
    full_counts[key_of(
        trace_tg(inst, sample_full_realization(fx.graph, rng)))]++;
  }
  // Compare the two empirical distributions on every observed key.
  for (const auto& [k, c] : full_counts) {
    const double pf = c / static_cast<double>(n);
    const double pl = lazy_counts[k] / static_cast<double>(n);
    EXPECT_NEAR(pf, pl, 0.015) << "key " << k;
  }
}

TEST(ReverseSampler, UnreachableTargetAlwaysTypeZero) {
  Graph::Builder b(5);
  b.add_edge(0, 1);          // s-component
  b.add_edge(2, 3).add_edge(3, 4);  // t-component
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 3);
  ReversePathSampler sampler(inst);
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(sampler.sample(rng).type1);
  }
}

}  // namespace
}  // namespace af
