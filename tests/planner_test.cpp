#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

PlannerOptions fast_options(std::uint64_t base_seed = 20190707) {
  PlannerOptions opts;
  opts.base_seed = base_seed;
  opts.threads = 4;
  opts.pmax_max_samples = 200'000;
  return opts;
}

MinimizeSpec fast_minimize(double alpha = 0.3) {
  MinimizeSpec spec;
  spec.alpha = alpha;
  spec.epsilon = alpha / 10.0;
  spec.big_n = 1000.0;
  spec.max_realizations = 20'000;
  return spec;
}

// ---------------------------------------------------------------- statuses

TEST(PlannerValidation, RejectsBadMinimizeSpecs) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  Planner planner(fx.graph, fast_options());

  MinimizeSpec bad = fast_minimize();
  bad.alpha = 0.0;
  PlanResult r = planner.plan({fx.s, fx.t, bad});
  EXPECT_EQ(r.status, PlanStatus::kInvalidSpec);
  EXPECT_FALSE(r.message.empty());

  bad = fast_minimize();
  bad.alpha = 1.5;
  EXPECT_EQ(planner.plan({fx.s, fx.t, bad}).status,
            PlanStatus::kInvalidSpec);

  bad = fast_minimize();
  bad.epsilon = bad.alpha;  // ε ≥ α
  EXPECT_EQ(planner.plan({fx.s, fx.t, bad}).status,
            PlanStatus::kInvalidSpec);

  bad = fast_minimize();
  bad.epsilon = 0.0;
  EXPECT_EQ(planner.plan({fx.s, fx.t, bad}).status,
            PlanStatus::kInvalidSpec);

  bad = fast_minimize();
  bad.big_n = 2.0;  // success probability 1 − 2/N would be 0
  EXPECT_EQ(planner.plan({fx.s, fx.t, bad}).status,
            PlanStatus::kInvalidSpec);
}

TEST(PlannerValidation, RejectsBadMaximizeSpecs) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  Planner planner(fx.graph, fast_options());

  MaximizeSpec zero_budget;
  zero_budget.budget = 0;
  PlanResult r = planner.plan({fx.s, fx.t, zero_budget});
  EXPECT_EQ(r.status, PlanStatus::kInvalidSpec);
  EXPECT_NE(r.message.find("budget"), std::string::npos);

  MaximizeSpec zero_realizations;
  zero_realizations.realizations = 0;
  EXPECT_EQ(planner.plan({fx.s, fx.t, zero_realizations}).status,
            PlanStatus::kInvalidSpec);
}

TEST(PlannerValidation, RejectsBadPairs) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  Planner planner(fx.graph, fast_options());

  // s == t.
  EXPECT_EQ(planner.plan({fx.s, fx.s, fast_minimize()}).status,
            PlanStatus::kInvalidPair);
  // Out of range.
  EXPECT_EQ(planner.plan({fx.graph.num_nodes(), fx.t, fast_minimize()})
                .status,
            PlanStatus::kInvalidPair);
  // Already friends: s is adjacent to the s-side intermediate (node 2).
  ASSERT_TRUE(fx.graph.has_edge(fx.s, 2));
  EXPECT_EQ(planner.plan({fx.s, 2, fast_minimize()}).status,
            PlanStatus::kInvalidPair);
}

TEST(PlannerStatus, UnreachableTargetIsCertified) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = b.build(WeightScheme::inverse_degree());
  Planner planner(g, fast_options());

  const PlanResult min = planner.plan({0, 3, fast_minimize()});
  EXPECT_EQ(min.status, PlanStatus::kTargetUnreachable);
  EXPECT_TRUE(min.diag.target_unreachable);
  EXPECT_TRUE(min.invitation.empty());
  EXPECT_EQ(min.diag.vmax_size, 0u);

  const PlanResult max = planner.plan({0, 3, MaximizeSpec{}});
  EXPECT_EQ(max.status, PlanStatus::kTargetUnreachable);
}

TEST(PlannerStatus, UndetectablySmallPmaxIsNotUnreachable) {
  // A 26-hop chain: p_max = 2^-24, far below the sampling cap.
  const auto fx = test::ParallelPathFixture::make(1, 25);
  PlannerOptions opts = fast_options();
  opts.pmax_max_samples = 10'000;
  Planner planner(fx.graph, opts);

  const PlanResult r = planner.plan({fx.s, fx.t, fast_minimize(0.5)});
  EXPECT_EQ(r.status, PlanStatus::kPmaxBelowDetection);
  EXPECT_TRUE(r.diag.pmax_below_detection);
  EXPECT_FALSE(r.diag.target_unreachable);
  EXPECT_EQ(r.diag.vmax_size, 25u);
  EXPECT_TRUE(r.invitation.empty());
}

TEST(PlannerStatus, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(PlanStatus::kOk), "ok");
  EXPECT_STREQ(to_string(PlanStatus::kInvalidSpec), "invalid-spec");
  EXPECT_STREQ(to_string(PlanStatus::kTargetUnreachable),
               "target-unreachable");
}

// ---------------------------------------------------------------- minimize

TEST(PlannerMinimize, MeetsGuaranteeOnParallelPaths) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  Planner planner(fx.graph, fast_options());
  const MinimizeSpec spec = fast_minimize(0.3);
  const PlanResult r = planner.plan({fx.s, fx.t, spec});

  ASSERT_EQ(r.status, PlanStatus::kOk);
  ASSERT_FALSE(r.invitation.empty());
  EXPECT_TRUE(r.invitation.contains(fx.t));
  const double f = test::exact_f(FriendingInstance(fx.graph, fx.s, fx.t),
                                 r.invitation);
  EXPECT_GE(f, (spec.alpha - spec.epsilon) * fx.pmax() - 1e-12);

  EXPECT_GT(r.diag.pmax.estimate, 0.0);
  EXPECT_GT(r.diag.l_star, 0.0);
  EXPECT_GT(r.diag.l_used, 0u);
  EXPECT_EQ(r.diag.vmax_size, 4u);  // t + one t-side intermediate per path
  EXPECT_GE(r.diag.covered, r.diag.coverage_target);
  EXPECT_NO_THROW(r.diag.params.check());
  EXPECT_FALSE(r.timings.pmax_cache_hit);
  EXPECT_FALSE(r.timings.vmax_cache_hit);
  EXPECT_EQ(r.timings.pool_sampled, r.diag.l_used);
  EXPECT_EQ(r.timings.pool_reused, 0u);
}

TEST(PlannerMinimize, SecondPlanOnPairIsServedFromCaches) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  Planner planner(fx.graph, fast_options());
  const QuerySpec q{fx.s, fx.t, fast_minimize(0.3)};

  const PlanResult first = planner.plan(q);
  const PlanResult second = planner.plan(q);
  ASSERT_EQ(first.status, PlanStatus::kOk);
  ASSERT_EQ(second.status, PlanStatus::kOk);

  // Bit-identical output, but every stage served from the pair cache.
  EXPECT_EQ(first.invitation.members(), second.invitation.members());
  EXPECT_DOUBLE_EQ(first.diag.pmax.estimate, second.diag.pmax.estimate);
  EXPECT_TRUE(second.timings.pmax_cache_hit);
  EXPECT_TRUE(second.timings.vmax_cache_hit);
  EXPECT_EQ(second.timings.pool_sampled, 0u);
  EXPECT_EQ(second.timings.pool_reused, second.diag.l_used);
}

TEST(PlannerMinimize, ClearCachesRebuildsDeterministically) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  Planner planner(fx.graph, fast_options());
  const QuerySpec q{fx.s, fx.t, fast_minimize(0.3)};

  const PlanResult before = planner.plan(q);
  planner.clear_caches();
  const PlanResult after = planner.plan(q);
  ASSERT_EQ(after.status, PlanStatus::kOk);
  // The caches were dropped (everything recomputed)…
  EXPECT_FALSE(after.timings.pmax_cache_hit);
  EXPECT_FALSE(after.timings.vmax_cache_hit);
  EXPECT_GT(after.timings.pool_sampled, 0u);
  // …but the derived seeds rebuild identical state.
  EXPECT_EQ(before.invitation.members(), after.invitation.members());
  EXPECT_DOUBLE_EQ(before.diag.pmax.estimate, after.diag.pmax.estimate);
}

TEST(PlannerMinimize, CachedPathMatchesRunWithPmaxEngine) {
  // The planner's pooled covering is exactly RafAlgorithm::run_with_pmax
  // fed with the cached estimate and the pool stream's seed.
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const std::uint64_t base_seed = 42;
  Planner planner(fx.graph, fast_options(base_seed));
  const MinimizeSpec spec = fast_minimize(0.3);
  const PlanResult r = planner.plan({fx.s, fx.t, spec});
  ASSERT_EQ(r.status, PlanStatus::kOk);

  RafConfig cfg;
  cfg.alpha = spec.alpha;
  cfg.epsilon = spec.epsilon;
  cfg.big_n = spec.big_n;
  cfg.policy = spec.policy;
  cfg.max_realizations = spec.max_realizations;
  cfg.solver = spec.solver;
  cfg.local_search = spec.local_search;
  const RafAlgorithm engine(cfg);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(Planner::derive_pool_seed(base_seed, fx.s, fx.t));
  const RafResult reference = engine.run_with_pmax(
      inst, r.diag.pmax.estimate, compute_vmax(inst).size(), rng);

  EXPECT_EQ(r.invitation.members(), reference.invitation.members());
  EXPECT_EQ(r.diag.l_used, reference.diag.l_used);
  EXPECT_EQ(r.diag.type1_count, reference.diag.type1_count);
  EXPECT_DOUBLE_EQ(r.diag.l_star, reference.diag.l_star);
}

// ------------------------------------------------------------------- batch

TEST(PlannerBatch, AlphaSweepMatchesSequentialAndReusesCaches) {
  // The acceptance-criterion scenario: an α-sweep on one (s,t) pair.
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const std::vector<double> alphas{0.15, 0.3, 0.45, 0.6, 0.75};

  std::vector<QuerySpec> queries;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    MinimizeSpec spec = fast_minimize(alphas[i]);
    // Varying realization caps force pool growth mid-sweep.
    spec.max_realizations = 4'000 + 3'000 * i;
    queries.push_back({fx.s, fx.t, spec});
  }

  Planner batch_planner(fx.graph, fast_options());
  const std::vector<PlanResult> batch = batch_planner.plan_batch(queries);

  Planner seq_planner(fx.graph, fast_options());
  std::vector<PlanResult> sequential;
  for (const QuerySpec& q : queries) sequential.push_back(seq_planner.plan(q));

  ASSERT_EQ(batch.size(), queries.size());
  std::size_t pmax_misses = 0;
  std::size_t vmax_misses = 0;
  std::uint64_t sampled_total = 0;
  std::uint64_t max_l = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i].status, PlanStatus::kOk) << "query " << i;
    // Bit-identical invitation sets, batch vs sequential.
    EXPECT_EQ(batch[i].invitation.members(),
              sequential[i].invitation.members())
        << "query " << i;
    EXPECT_EQ(batch[i].diag.l_used, sequential[i].diag.l_used);
    EXPECT_DOUBLE_EQ(batch[i].diag.pmax.estimate,
                     sequential[i].diag.pmax.estimate);
    pmax_misses += batch[i].timings.pmax_cache_hit ? 0 : 1;
    vmax_misses += batch[i].timings.vmax_cache_hit ? 0 : 1;
    sampled_total += batch[i].timings.pool_sampled;
    max_l = std::max(max_l, batch[i].diag.l_used);
  }
  // The DKLR estimate and the block-cut V_max ran exactly once for the
  // whole sweep; every other query hit the pair cache.
  EXPECT_EQ(pmax_misses, 1u);
  EXPECT_EQ(vmax_misses, 1u);
  // Pool growth is monotone: the sweep samples exactly max-l realizations
  // in total, never resampling a prefix.
  EXPECT_EQ(sampled_total, max_l);
}

TEST(PlannerBatch, HeterogeneousBatchKeepsOrderAndStatuses) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  MinimizeSpec bad = fast_minimize();
  bad.alpha = -1.0;

  std::vector<QuerySpec> queries{
      {fx.s, fx.t, fast_minimize(0.3)},
      {fx.s, fx.t, MaximizeSpec{.budget = 4, .realizations = 10'000}},
      {fx.s, fx.t, bad},
      {fx.s, fx.s, fast_minimize(0.3)},
  };
  Planner planner(fx.graph, fast_options());
  const std::vector<PlanResult> results = planner.plan_batch(queries);

  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, PlanStatus::kOk);
  EXPECT_EQ(results[1].status, PlanStatus::kOk);
  EXPECT_EQ(results[2].status, PlanStatus::kInvalidSpec);
  EXPECT_EQ(results[3].status, PlanStatus::kInvalidPair);
}

TEST(PlannerBatch, EmptyAndSingletonBatches) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  Planner planner(fx.graph, fast_options());
  EXPECT_TRUE(planner.plan_batch({}).empty());

  const std::vector<QuerySpec> one{{fx.s, fx.t, fast_minimize(0.3)}};
  const auto results = planner.plan_batch(one);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, PlanStatus::kOk);
}

// ---------------------------------------------------------------- maximize

TEST(PlannerMaximize, RespectsBudgetAndSharesThePool) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  Planner planner(fx.graph, fast_options());

  MaximizeSpec spec;
  spec.budget = 2;  // one backward path: t + its t-side intermediate
  spec.realizations = 10'000;
  const PlanResult r = planner.plan({fx.s, fx.t, spec});
  ASSERT_EQ(r.status, PlanStatus::kOk);
  EXPECT_LE(r.invitation.size(), spec.budget);
  EXPECT_TRUE(r.invitation.contains(fx.t));
  EXPECT_GT(r.sample_coverage, 0.0);
  EXPECT_EQ(r.diag.l_used, spec.realizations);

  // A minimize query on the same pair reuses the maximize query's pool.
  MinimizeSpec min_spec = fast_minimize(0.3);
  min_spec.max_realizations = 10'000;
  const PlanResult m = planner.plan({fx.s, fx.t, min_spec});
  ASSERT_EQ(m.status, PlanStatus::kOk);
  EXPECT_EQ(m.timings.pool_sampled, 0u);
  EXPECT_EQ(m.timings.pool_reused, 10'000u);
  EXPECT_TRUE(m.timings.vmax_cache_hit);
}

// ------------------------------------------------- memory governor

/// A connected BA graph plus several valid non-adjacent (s,t) pairs —
/// the many-pairs serving scenario the memory governor exists for.
struct GovernorFixture {
  Graph graph;
  std::vector<std::pair<NodeId, NodeId>> pairs;

  static GovernorFixture make(std::size_t num_pairs) {
    GovernorFixture fx;
    Rng rng(404);
    fx.graph = barabasi_albert(200, 3, rng)
                   .build(WeightScheme::inverse_degree());
    for (NodeId u = 0; u < 100 && fx.pairs.size() < num_pairs; ++u) {
      const NodeId v = 100 + u;
      if (!fx.graph.has_edge(u, v)) fx.pairs.emplace_back(u, v);
    }
    return fx;
  }

  std::vector<QuerySpec> maximize_queries(std::uint64_t realizations) const {
    std::vector<QuerySpec> qs;
    for (const auto& [s, t] : pairs) {
      qs.push_back({s, t, MaximizeSpec{.budget = 4,
                                       .realizations = realizations}});
    }
    return qs;
  }
};

TEST(PlannerGovernor, UnboundedPlannerRetainsEveryPair) {
  const auto fx = GovernorFixture::make(5);
  Planner planner(fx.graph, fast_options());
  for (const QuerySpec& q : fx.maximize_queries(5'000)) planner.plan(q);

  const PlannerCacheStats stats = planner.cache_stats();
  EXPECT_EQ(stats.entries, 5u);
  EXPECT_EQ(stats.budget_bytes, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.charged_bytes, 0u);
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GT(stats.index_slots, 0u);
}

TEST(PlannerGovernor, BudgetCapsAccountedBytesAcrossMixedBatch) {
  const auto fx = GovernorFixture::make(6);
  std::vector<QuerySpec> queries = fx.maximize_queries(5'000);
  // Mix in minimize queries on the first two pairs (exercises the DKLR
  // and V_max stages under the same budget).
  MinimizeSpec min = fast_minimize(0.3);
  min.max_realizations = 5'000;
  queries.push_back({fx.pairs[0].first, fx.pairs[0].second, min});
  queries.push_back({fx.pairs[1].first, fx.pairs[1].second, min});

  // Size the budget from the unbounded footprint so the test tracks the
  // real cost functional instead of hard-coding byte counts.
  Planner unbounded(fx.graph, fast_options());
  unbounded.plan_batch(queries);
  const std::uint64_t full = unbounded.cache_stats().charged_bytes;
  ASSERT_GT(full, 0u);

  PlannerOptions opts = fast_options();
  opts.cache_budget_bytes = full / 2;
  Planner governed(fx.graph, opts);

  // Sequentially first: the accounted footprint must respect the budget
  // after EVERY query, not just at the end.
  for (const QuerySpec& q : queries) {
    governed.plan(q);
    EXPECT_LE(governed.cache_stats().charged_bytes,
              opts.cache_budget_bytes);
  }
  const PlannerCacheStats seq = governed.cache_stats();
  EXPECT_GT(seq.evictions, 0u);
  EXPECT_LT(seq.entries, fx.pairs.size());

  // And concurrently: plan_batch under the same budget stays capped.
  Planner batch_governed(fx.graph, opts);
  const auto results = batch_governed.plan_batch(queries);
  for (const PlanResult& r : results) {
    EXPECT_NE(r.status, PlanStatus::kInternalError) << r.message;
  }
  const PlannerCacheStats batch = batch_governed.cache_stats();
  EXPECT_LE(batch.charged_bytes, opts.cache_budget_bytes);
  EXPECT_GT(batch.evictions, 0u);
}

TEST(PlannerGovernor, EvictedPairReplansBitIdentically) {
  const auto fx = GovernorFixture::make(4);
  MinimizeSpec min = fast_minimize(0.3);
  min.max_realizations = 5'000;
  const QuerySpec probe{fx.pairs[0].first, fx.pairs[0].second, min};

  // Reference: what an ungoverned planner answers for the probe pair.
  Planner unbounded(fx.graph, fast_options());
  const PlanResult reference = unbounded.plan(probe);

  // Budget = exactly one pair's footprint: planning any other pair must
  // push the total over budget and evict the (colder) probe pair.
  const std::uint64_t one_pair = unbounded.cache_stats().charged_bytes;
  PlannerOptions opts = fast_options();
  opts.cache_budget_bytes = one_pair;
  Planner governed(fx.graph, opts);

  const PlanResult before = governed.plan(probe);
  for (const QuerySpec& q : fx.maximize_queries(5'000)) {
    if (q.s != probe.s || q.t != probe.t) governed.plan(q);
  }
  ASSERT_GT(governed.cache_stats().evictions, 0u);

  const PlanResult after = governed.plan(probe);
  // The pair was rebuilt, not served from cache…
  EXPECT_FALSE(after.timings.pmax_cache_hit);
  EXPECT_FALSE(after.timings.vmax_cache_hit);
  // …and the counter-derived streams make the rebuild bit-identical to
  // both the pre-eviction result and the ungoverned planner.
  ASSERT_EQ(after.status, before.status);
  EXPECT_EQ(after.invitation.members(), before.invitation.members());
  EXPECT_EQ(after.invitation.members(), reference.invitation.members());
  EXPECT_DOUBLE_EQ(after.diag.pmax.estimate, before.diag.pmax.estimate);
  EXPECT_EQ(after.diag.l_used, before.diag.l_used);
  EXPECT_EQ(after.diag.type1_count, before.diag.type1_count);
}

TEST(PlannerGovernor, ClearCachesReleasesAccountedBytes) {
  const auto fx = GovernorFixture::make(3);
  Planner planner(fx.graph, fast_options());
  for (const QuerySpec& q : fx.maximize_queries(5'000)) planner.plan(q);
  ASSERT_GT(planner.cache_stats().charged_bytes, 0u);

  planner.clear_caches();
  const PlannerCacheStats stats = planner.cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.charged_bytes, 0u);
}

// ------------------------------------------------- compact index

TEST(PlannerCompactIndex, ServesQueriesAndShrinksTheIndex) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  PlannerOptions opts = fast_options();
  opts.compact_index = true;
  Planner compact(fx.graph, opts);
  Planner exact(fx.graph, fast_options());

  const PlannerCacheStats cs = compact.cache_stats();
  const PlannerCacheStats es = exact.cache_stats();
  EXPECT_EQ(cs.index_slots, es.index_slots);
  EXPECT_LT(cs.index_bytes, es.index_bytes);
  EXPECT_LE(cs.index_bytes_per_slot, 12.0);

  // Both index kinds answer the probe correctly (distinct rng streams,
  // same distribution — analytic diagnostics must agree).
  const QuerySpec q{fx.s, fx.t, fast_minimize(0.3)};
  const PlanResult rc = compact.plan(q);
  const PlanResult re = exact.plan(q);
  ASSERT_EQ(rc.status, PlanStatus::kOk) << rc.message;
  ASSERT_EQ(re.status, PlanStatus::kOk) << re.message;
  EXPECT_EQ(rc.diag.vmax_size, re.diag.vmax_size);
  EXPECT_NEAR(rc.diag.pmax.estimate, fx.pmax(), 0.2 * fx.pmax());

  // Compact planners are deterministic among themselves.
  Planner compact2(fx.graph, opts);
  const PlanResult rc2 = compact2.plan(q);
  EXPECT_EQ(rc.invitation.members(), rc2.invitation.members());
  EXPECT_DOUBLE_EQ(rc.diag.pmax.estimate, rc2.diag.pmax.estimate);
}

TEST(PlannerMaximize, DeterministicAcrossPlanners) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  MaximizeSpec spec;
  spec.budget = 4;
  spec.realizations = 5'000;

  Planner a(fx.graph, fast_options(7));
  Planner b(fx.graph, fast_options(7));
  const PlanResult ra = a.plan({fx.s, fx.t, spec});
  const PlanResult rb = b.plan({fx.s, fx.t, spec});
  ASSERT_EQ(ra.status, PlanStatus::kOk);
  EXPECT_EQ(ra.invitation.members(), rb.invitation.members());
  EXPECT_DOUBLE_EQ(ra.sample_coverage, rb.sample_coverage);
}

}  // namespace
}  // namespace af
