#include <gtest/gtest.h>

#include "core/datasets.hpp"
#include "core/pair_sampler.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

TEST(PairSampler, AcceptedPairsAreValidInstances) {
  Rng rng(1);
  const Graph g =
      barabasi_albert(400, 3, rng).build(WeightScheme::inverse_degree());
  PairSamplerConfig cfg;
  cfg.pmax_threshold = 0.01;
  cfg.estimate_samples = 1'500;
  const auto pairs = sample_pairs(g, 10, cfg, rng);
  ASSERT_GT(pairs.size(), 0u);
  for (const auto& p : pairs) {
    EXPECT_NE(p.s, p.t);
    EXPECT_FALSE(g.has_edge(p.s, p.t));
    EXPECT_GE(p.pmax_estimate, cfg.pmax_threshold);
    // The BFS-ball protocol keeps targets within the configured radius.
    EXPECT_LE(bfs_distance(g, p.s, p.t), cfg.max_distance);
    EXPECT_GE(bfs_distance(g, p.s, p.t), 2u);
    // Independent re-estimate confirms the pair is not spurious.
    const FriendingInstance inst(g, p.s, p.t);
    MonteCarloEvaluator mc(inst);
    const double re = mc.estimate_pmax(20'000, rng).estimate();
    EXPECT_GE(re, cfg.pmax_threshold * 0.3)
        << "pair (" << p.s << "," << p.t << ") looks spurious";
  }
}

TEST(PairSampler, ThresholdTooHighYieldsNothing) {
  // A path with uniform arc weight 0.3: every admissible pair is at
  // distance ≥ 2, so p_max ≤ 0.3 and a 0.999 threshold is provably
  // unattainable for any sampling stream. (A BA graph does NOT work
  // here: hubs yield genuine p_max = 1 pairs — every neighbor of t
  // already a friend of s.)
  Rng rng(2);
  const Graph g = test::weighted_path(40, 0.3);
  PairSamplerConfig cfg;
  cfg.pmax_threshold = 0.999;
  cfg.estimate_samples = 500;
  cfg.max_attempts = 300;
  EXPECT_FALSE(sample_pair(g, cfg, rng).has_value());
}

TEST(PairSampler, DeterministicGivenSeed) {
  Rng r1(7), r2(7);
  const Graph g =
      barabasi_albert(300, 3, r1).build(WeightScheme::inverse_degree());
  Rng r1b(11), r2b(11);
  PairSamplerConfig cfg;
  cfg.estimate_samples = 1'000;
  const auto a = sample_pairs(g, 5, cfg, r1b);
  const auto b = sample_pairs(g, 5, cfg, r2b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
  }
}

TEST(PairSampler, WorksOnEveryPaperDatasetAnalogSmall) {
  // Scaled-down analogs (generation parameters, not sizes) — sanity that
  // the protocol finds pairs on each topology family.
  Rng rng(3);
  for (const auto& spec : paper_dataset_specs(false)) {
    DatasetSpec small = spec;
    small.nodes = 1'000;
    const Graph g = make_dataset(small, rng);
    PairSamplerConfig cfg;
    cfg.estimate_samples = 1'000;
    const auto p = sample_pair(g, cfg, rng);
    EXPECT_TRUE(p.has_value()) << spec.name;
  }
}

TEST(Datasets, SpecsMatchTableOne) {
  const auto specs = paper_dataset_specs(false);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "wiki");
  EXPECT_EQ(specs[3].name, "youtube");
  // Full scale restores the paper's node count for youtube.
  EXPECT_EQ(dataset_spec("youtube", true).nodes, 1'100'000u);
  EXPECT_EQ(dataset_spec("youtube", false).nodes, 200'000u);
  EXPECT_THROW(dataset_spec("nope"), precondition_error);
}

TEST(Datasets, GeneratedGraphMatchesSpecShape) {
  Rng rng(5);
  DatasetSpec spec = dataset_spec("wiki");
  spec.nodes = 2'000;  // shrink for test speed; attachment unchanged
  const Graph g = make_dataset(spec, rng);
  EXPECT_EQ(g.num_nodes(), 2'000u);
  // BA edge count ≈ attach per node; avg degree ≈ 2·attach.
  EXPECT_NEAR(g.average_degree(), 2.0 * static_cast<double>(spec.attach),
              2.0);
}

}  // namespace
}  // namespace af
