// Tier-1 coverage for the rebuilt sampling hot path (DESIGN.md §7):
// alias-table correctness (chi-square against the exact per-neighbor
// probabilities), the PathArena layout, and the per-sample counter-stream
// determinism contract of bulk sampling (bit-identical at every thread
// count, windowed growth matches one-shot draws).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/raf.hpp"
#include "cover/setfamily.hpp"
#include "diffusion/bulk_sampler.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/path_arena.hpp"
#include "diffusion/realization.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace af {
namespace {

// ------------------------------------------------------- chi-square GOF

/// χ² statistic of `draws` selections of node v against the exact
/// distribution {in_weights(v)} ∪ {leftover_mass(v)}.
double chi_square_for_node(const Graph& g, const SelectionSampler& sel,
                           NodeId v, int draws, std::uint64_t seed) {
  Rng rng(seed);
  auto nbrs = g.neighbors(v);
  // counts[i] = times neighbor i was selected; counts.back() = ℵ0.
  std::vector<int> counts(nbrs.size() + 1, 0);
  for (int i = 0; i < draws; ++i) {
    const NodeId pick = sel.sample_selection(v, rng);
    if (pick == kNoNode) {
      ++counts.back();
      continue;
    }
    bool found = false;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] == pick) {
        ++counts[k];
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "selection is not a neighbor of " << v;
  }

  auto ws = g.in_weights(v);
  double chi2 = 0.0;
  for (std::size_t k = 0; k <= nbrs.size(); ++k) {
    const double p = k < nbrs.size() ? ws[k] : g.leftover_mass(v);
    const double expected = p * draws;
    if (expected == 0.0) {
      // Zero-probability outcomes must never occur.
      EXPECT_EQ(counts[k], 0);
      continue;
    }
    const double d = counts[k] - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

/// Loose χ² critical value (Wilson–Hilferty, z ≈ 5 ⟹ p ≪ 1e-5). The
/// seeds are fixed so this never flakes; a buggy table overshoots by
/// orders of magnitude.
double chi_square_critical(std::size_t df) {
  const double d = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * d) + 5.0 * std::sqrt(2.0 / (9.0 * d));
  return d * t * t * t;
}

/// Runs the chi-square check for every non-isolated node of g.
void expect_exact_distribution(const Graph& g, const SelectionSampler& sel,
                               std::uint64_t seed) {
  const int draws = 200'000;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0) continue;
    // df = (#outcomes with positive mass) − 1.
    std::size_t df = g.degree(v) + (g.leftover_mass(v) > 0.0 ? 1 : 0) - 1;
    if (df == 0) continue;
    const double chi2 = chi_square_for_node(g, sel, v, draws, seed + v);
    EXPECT_LT(chi2, chi_square_critical(df)) << "node " << v;
  }
}

TEST(SamplingIndex, ChiSquareOnExplicitWeights) {
  // Node 2's outcomes: select 0 w.p. 0.3, select 1 w.p. 0.5, ℵ0 w.p. 0.2.
  Graph::Builder b(3);
  b.add_edge(0, 2, 0.3, 0.1).add_edge(1, 2, 0.5, 0.1);
  const Graph g = b.build_with_explicit_weights();
  const SamplingIndex index(g);
  expect_exact_distribution(g, index, 101);
}

TEST(SamplingIndex, ChiSquareOnRandomGraphWithLeftoverMass) {
  Rng rng(7);
  // random_normalized(0.7): Σ_u w(u,v) = 0.7, leftover 0.3 per node.
  const Graph g =
      gnm_random(24, 60, rng).build(WeightScheme::random_normalized(0.7),
                                    &rng);
  const SamplingIndex index(g);
  expect_exact_distribution(g, index, 202);
}

TEST(SamplingIndex, ScanOracleMatchesSameDistribution) {
  // The equivalence oracle passes the identical harness: alias and scan
  // realize the same per-node law, only the per-draw cost differs.
  Rng rng(7);
  const Graph g =
      gnm_random(24, 60, rng).build(WeightScheme::random_normalized(0.7),
                                    &rng);
  const ScanSelectionSampler scan(g);
  expect_exact_distribution(g, scan, 303);
}

TEST(SamplingIndex, IsolatedNodeAlwaysSelectsNobody) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const SamplingIndex index(g);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(index.sample_selection(2, rng), kNoNode);
  }
}

TEST(SamplingIndex, FullInWeightNodeNeverSelectsNobody) {
  // inverse_degree weights sum to 1 (up to double rounding: deg × 1/deg
  // can leave an ulp): the ℵ0 slot has at most ~2⁻⁵² mass and must not
  // show up in any realistic number of draws.
  Rng rng(13);
  const Graph g =
      gnm_random(20, 50, rng).build(WeightScheme::inverse_degree());
  const SamplingIndex index(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0) continue;
    ASSERT_LT(g.leftover_mass(v), 1e-12);
    for (int i = 0; i < 200; ++i) {
      EXPECT_NE(index.sample_selection(v, rng), kNoNode) << "node " << v;
    }
  }
}

TEST(SamplingIndex, SlotLayoutIsCsrMirror) {
  Rng rng(17);
  const Graph g =
      gnm_random(30, 70, rng).build(WeightScheme::inverse_degree());
  const SamplingIndex index(g);
  EXPECT_EQ(index.num_slots(), 2 * g.num_edges() + g.num_nodes());
  EXPECT_GT(index.memory_bytes(), index.num_slots() * sizeof(double));
}

// ------------------------------------------------- compact float32 index

TEST(CompactSamplingIndex, ChiSquareOnExplicitWeights) {
  // The float32 quantization gate: the compact index must pass the same
  // goodness-of-fit harness as the exact-threshold index.
  Graph::Builder b(3);
  b.add_edge(0, 2, 0.3, 0.1).add_edge(1, 2, 0.5, 0.1);
  const Graph g = b.build_with_explicit_weights();
  const CompactSamplingIndex index(g);
  expect_exact_distribution(g, index, 404);
}

TEST(CompactSamplingIndex, ChiSquareOnRandomGraphWithLeftoverMass) {
  Rng rng(7);
  const Graph g =
      gnm_random(24, 60, rng).build(WeightScheme::random_normalized(0.7),
                                    &rng);
  const CompactSamplingIndex index(g);
  expect_exact_distribution(g, index, 505);
}

TEST(CompactSamplingIndex, IsolatedNodeAlwaysSelectsNobody) {
  Graph::Builder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const CompactSamplingIndex index(g);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(index.sample_selection(2, rng), kNoNode);
  }
}

TEST(CompactSamplingIndex, TwelveBytesPerSlotBeatsTheExactIndex) {
  Rng rng(17);
  const Graph g =
      gnm_random(30, 70, rng).build(WeightScheme::inverse_degree());
  const CompactSamplingIndex compact(g);
  const SamplingIndex exact(g);
  EXPECT_EQ(compact.num_slots(), exact.num_slots());
  EXPECT_EQ(CompactSamplingIndex::bytes_per_slot(), 12u);
  EXPECT_EQ(SamplingIndex::bytes_per_slot(), 16u);
  EXPECT_LT(compact.memory_bytes(), exact.memory_bytes());
  // ROADMAP target: ≤ 12 bytes/slot including the CSR offsets' share.
  EXPECT_LE(static_cast<double>(compact.memory_bytes()) /
                static_cast<double>(compact.num_slots()),
            12.0 + 1.0);
}

// ------------------------------------------------------------ PathArena

TEST(PathArena, PushAppendAndViews) {
  PathArena a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);

  const std::vector<NodeId> p0{1, 3, 5};
  const std::vector<NodeId> p1{2};
  a.push_path(p0);
  a.push_path(p1);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.total_nodes(), 4u);
  EXPECT_EQ(std::vector<NodeId>(a[0].begin(), a[0].end()), p0);
  EXPECT_EQ(std::vector<NodeId>(a[1].begin(), a[1].end()), p1);

  PathArena b;
  b.push_path(std::vector<NodeId>{7, 8});
  b.append(a);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(std::vector<NodeId>(b[1].begin(), b[1].end()), p0);
  EXPECT_EQ(std::vector<NodeId>(b[2].begin(), b[2].end()), p1);

  PathArena c = b;
  EXPECT_EQ(b, c);
  c.push_path(p1);
  EXPECT_NE(b, c);

  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.total_nodes(), 0u);
}

TEST(PathArena, AppendsThroughReallocationKeepContents) {
  // The span contract regression (no reserve: pushes keep reallocating
  // the node buffer). Spans are re-read after every mutation — under
  // ASan, any arena bug that left offsets pointing into a freed buffer
  // trips here.
  PathArena a;
  std::vector<std::vector<NodeId>> expected;
  Rng rng(5);
  for (int i = 0; i < 600; ++i) {
    std::vector<NodeId> p(1 + i % 7);
    for (NodeId& v : p) v = static_cast<NodeId>(rng.next_u64() & 0xffff);
    a.push_path(p);
    expected.push_back(std::move(p));
  }
  ASSERT_EQ(a.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::vector<NodeId>(a[i].begin(), a[i].end()), expected[i])
        << "path " << i;
  }
}

TEST(PathArena, MovedFromArenaIsEmptyAndReusable) {
  // Regression: a moved-from arena used to inherit the moved-from
  // vector's emptiness, so size() underflowed to SIZE_MAX.
  PathArena a;
  a.push_path(std::vector<NodeId>{1, 2, 3});
  PathArena b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.total_nodes(), 0u);
  a.push_path(std::vector<NodeId>{4});
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].front(), 4u);

  PathArena c;
  c.push_path(std::vector<NodeId>{9});
  c = std::move(b);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].size(), 3u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(PathArena, ClearKeepsCapacityReleaseReturnsIt) {
  PathArena a;
  for (int i = 0; i < 200; ++i) {
    a.push_path(std::vector<NodeId>{1, 2, 3, 4});
  }
  const std::size_t grown = a.memory_bytes();
  ASSERT_GT(grown, 200 * 4 * sizeof(NodeId));

  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.memory_bytes(), grown);  // clear() retains capacity…

  a.release();
  EXPECT_TRUE(a.empty());
  EXPECT_LT(a.memory_bytes(), grown);  // …release() gives it back
  a.push_path(std::vector<NodeId>{7});  // and the arena stays usable
  EXPECT_EQ(a.size(), 1u);
}

TEST(PathArena, SelfAppendIsAContractViolation) {
  PathArena a;
  a.push_path(std::vector<NodeId>{1, 2});
  EXPECT_THROW(a.append(a), precondition_error);
}

// ----------------------------------------------- bulk sampling contract

TEST(BulkSampler, BitIdenticalAcrossThreadCounts) {
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  const std::uint64_t root = 99;
  const std::uint64_t count = 9000;  // above the parallel threshold

  const BulkType1Paths inline_run =
      sample_type1_bulk(inst, index, 0, count, root, nullptr);
  EXPECT_GT(inline_run.paths.size(), 0u);
  for (std::size_t threads : {1u, 2u, 3u, 7u}) {
    ThreadPool pool(threads);
    const BulkType1Paths run =
        sample_type1_bulk(inst, index, 0, count, root, &pool);
    EXPECT_EQ(run.positions, inline_run.positions) << threads << " threads";
    EXPECT_EQ(run.paths, inline_run.paths) << threads << " threads";
  }
}

TEST(BulkSampler, WindowedGrowthMatchesOneShot) {
  // The realization-pool contract: growing [0,k) then [k,l) yields
  // exactly the one-shot [0,l) draw.
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  const std::uint64_t root = 1234;
  const std::uint64_t k = 700, l = 2000;

  const BulkType1Paths whole =
      sample_type1_bulk(inst, index, 0, l, root, nullptr);
  BulkType1Paths grown = sample_type1_bulk(inst, index, 0, k, root, nullptr);
  const BulkType1Paths tail =
      sample_type1_bulk(inst, index, k, l - k, root, nullptr);
  grown.paths.append(tail.paths);
  grown.positions.insert(grown.positions.end(), tail.positions.begin(),
                         tail.positions.end());
  EXPECT_EQ(grown.positions, whole.positions);
  EXPECT_EQ(grown.paths, whole.paths);
}

TEST(BulkSampler, FlagsAgreeWithPathsAndThreadCounts) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  const std::uint64_t root = 5, count = 8192;

  std::vector<std::uint8_t> inline_flags(count);
  sample_type1_flags(inst, index, 0, count, root, nullptr,
                     inline_flags.data());

  // Flags mark exactly the positions the path collector keeps.
  const BulkType1Paths bulk =
      sample_type1_bulk(inst, index, 0, count, root, nullptr);
  std::vector<std::uint64_t> flagged;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (inline_flags[i]) flagged.push_back(i);
  }
  EXPECT_EQ(flagged, bulk.positions);

  ThreadPool pool(4);
  std::vector<std::uint8_t> pooled_flags(count);
  sample_type1_flags(inst, index, 0, count, root, &pool, pooled_flags.data());
  EXPECT_EQ(pooled_flags, inline_flags);
}

TEST(BulkSampler, ScanAndAliasAgreeOnTypeOneRate) {
  // Alias vs scan draw different per-stream values (they consume
  // randomness differently) but identical distributions: both type-1
  // rates must match the analytic p_max = (1/2)^(len-1) = 0.25.
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  const ScanSelectionSampler scan(fx.graph);
  const std::uint64_t count = 60'000;

  const auto rate = [&](const SelectionSampler& sel, std::uint64_t root) {
    const BulkType1Paths b = sample_type1_bulk(inst, sel, 0, count, root,
                                               nullptr);
    return static_cast<double>(b.positions.size()) / count;
  };
  EXPECT_NEAR(rate(index, 21), fx.pmax(), 0.012);
  EXPECT_NEAR(rate(scan, 22), fx.pmax(), 0.012);
}

// ------------------------------------------------- DKLR over the index

TEST(BulkDklr, DeterministicAcrossPoolSizesAndNearAnalytic) {
  const auto fx = test::ParallelPathFixture::make(2, 2);  // p_max = 0.5
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  DklrConfig cfg;
  cfg.epsilon = 0.1;
  cfg.delta = 0.01;

  Rng rng0(31);
  const DklrResult inline_res = estimate_pmax_dklr(inst, index, rng0, cfg);
  EXPECT_TRUE(inline_res.converged);
  EXPECT_NEAR(inline_res.estimate, fx.pmax(), 0.15 * fx.pmax());

  for (std::size_t threads : {1u, 3u, 6u}) {
    ThreadPool pool(threads);
    Rng rng(31);
    const DklrResult res = estimate_pmax_dklr(inst, index, rng, cfg, &pool);
    EXPECT_EQ(res.samples_used, inline_res.samples_used);
    EXPECT_EQ(res.successes, inline_res.successes);
    EXPECT_DOUBLE_EQ(res.estimate, inline_res.estimate);
    // The adaptive schedule is a pure function of the indicator stream,
    // so the work accounting is thread-count-invariant too.
    EXPECT_EQ(res.samples_drawn, inline_res.samples_drawn);
  }
}

TEST(BulkDklr, AdaptiveScheduleStopsAtTheSequentialStoppingDraw) {
  const auto fx = test::ParallelPathFixture::make(2, 2);  // p_max = 0.5
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  DklrConfig cfg;
  cfg.epsilon = 0.1;
  cfg.delta = 0.01;
  Rng rng(31);
  const DklrResult res = estimate_pmax_dklr(inst, index, rng, cfg);
  ASSERT_TRUE(res.converged);

  // Replay the indicator stream (same root: the estimator's first and
  // only draw from its rng) and find where the draw-one-at-a-time
  // sequential rule stops. The block schedule must land exactly there.
  const std::uint64_t root = Rng(31).next_u64();
  std::vector<std::uint8_t> flags(res.samples_used + 4096);
  sample_type1_flags(inst, index, 0, flags.size(), root, nullptr,
                     flags.data());
  std::uint64_t successes = 0;
  std::uint64_t stop = 0;
  for (std::uint64_t i = 0; i < flags.size(); ++i) {
    if (flags[i]) ++successes;
    if (static_cast<double>(successes) >= res.upsilon) {
      stop = i + 1;
      break;
    }
  }
  ASSERT_GT(stop, 0u);
  EXPECT_EQ(res.samples_used, stop);
  EXPECT_EQ(res.successes, successes);
  EXPECT_DOUBLE_EQ(res.estimate, res.upsilon / static_cast<double>(stop));

  // Work accounting: every used sample was drawn, and the schedule beats
  // the old fixed 8192-sample blocks' worst case (round up to a block).
  EXPECT_GE(res.samples_drawn, res.samples_used);
  const std::uint64_t fixed_block_drawn =
      (res.samples_used + 8191) / 8192 * 8192;
  EXPECT_LE(res.samples_drawn, fixed_block_drawn);
}

TEST(BulkDklr, CappedRunReportsFrequencyAtExactCap) {
  const auto fx = test::ParallelPathFixture::make(1, 25);  // p_max = 2^-24
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  DklrConfig cfg;
  cfg.max_samples = 10'000;
  Rng rng(37);
  const DklrResult res = estimate_pmax_dklr(inst, index, rng, cfg);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.samples_used, 10'000u);
  // Block sizes are clamped to the cap: a capped run never draws past it.
  EXPECT_EQ(res.samples_drawn, 10'000u);
}

// ------------------------------------------ engine-level family drawing

TEST(SampleTypeOneFamily, PoolInvariantAndSeedDeterministic) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const SamplingIndex index(fx.graph);
  const std::uint64_t l = 12'000;

  Rng rng_a(77);
  const SetFamily a = sample_type1_family(inst, index, l, rng_a, nullptr);
  ASSERT_GT(a.num_sets(), 0u);

  for (std::size_t threads : {2u, 5u}) {
    ThreadPool pool(threads);
    Rng rng_b(77);
    const SetFamily b = sample_type1_family(inst, index, l, rng_b, &pool);
    ASSERT_EQ(b.num_sets(), a.num_sets());
    EXPECT_EQ(b.total_multiplicity(), a.total_multiplicity());
    for (std::uint32_t i = 0; i < a.num_sets(); ++i) {
      EXPECT_EQ(b.elements(i), a.elements(i)) << "set " << i;
      EXPECT_EQ(b.multiplicity(i), a.multiplicity(i)) << "set " << i;
    }
  }

  // The index-free overload roots its stream the same way.
  Rng rng_c(77);
  const SetFamily c = sample_type1_family(inst, l, rng_c);
  EXPECT_EQ(c.num_sets(), a.num_sets());
  EXPECT_EQ(c.total_multiplicity(), a.total_multiplicity());
}

// --------------------------------------------------- seed-stream basics

TEST(StreamSampleSeed, DeterministicAndSpread) {
  EXPECT_EQ(stream_sample_seed(42, 7), stream_sample_seed(42, 7));
  // Nearby indices and roots land on unrelated seeds.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_NE(stream_sample_seed(42, i), stream_sample_seed(42, i + 1));
    EXPECT_NE(stream_sample_seed(42, i), stream_sample_seed(43, i));
  }
}

}  // namespace
}  // namespace af
