// The Theorem-1 contract, swept over the full configuration matrix:
// α × ε0-policy × cover solver × fixture shape, each combination checked
// against the exact-enumeration oracle. This is the closest executable
// statement of "RAF delivers f(I*) ≥ (α−ε)·p_max" the library has.
#include <gtest/gtest.h>

#include <tuple>

#include "core/raf.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

struct MatrixCase {
  double alpha;
  Eps0Policy policy;
  CoverSolverKind solver;
  std::size_t paths;
  std::size_t len;
};

std::string case_name(const testing::TestParamInfo<MatrixCase>& info) {
  const auto& c = info.param;
  // Built with append() rather than operator+ to dodge a GCC 12
  // -Wrestrict false positive on `const char* + std::string&&`.
  std::string s = "a";
  s += std::to_string(static_cast<int>(c.alpha * 100));
  s += c.policy == Eps0Policy::kBalanced ? "_bal" : "_pap";
  switch (c.solver) {
    case CoverSolverKind::kGreedy: s += "_greedy"; break;
    case CoverSolverKind::kDensest: s += "_densest"; break;
    case CoverSolverKind::kSmallestSets: s += "_small"; break;
    case CoverSolverKind::kExact: s += "_exact"; break;
  }
  s += "_p";
  s += std::to_string(c.paths);
  s += "l";
  s += std::to_string(c.len);
  return s;
}

class GuaranteeMatrix : public testing::TestWithParam<MatrixCase> {};

TEST_P(GuaranteeMatrix, TheoremOneContractHolds) {
  const auto& c = GetParam();
  const auto fx = test::ParallelPathFixture::make(c.paths, c.len);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);

  RafConfig cfg;
  cfg.alpha = c.alpha;
  cfg.epsilon = c.alpha / 10.0;
  cfg.big_n = 1'000.0;
  cfg.policy = c.policy;
  cfg.solver = c.solver;
  cfg.max_realizations = 30'000;
  cfg.pmax_max_samples = 400'000;
  const RafAlgorithm raf(cfg);

  Rng rng(6100 + static_cast<std::uint64_t>(c.alpha * 1000) +
          c.paths * 7 + c.len);
  const RafResult res = raf.run(inst, rng);

  // Structure: a nonempty plan on these always-reachable fixtures,
  // containing t, never touching s or N_s.
  ASSERT_FALSE(res.invitation.empty());
  EXPECT_TRUE(res.invitation.contains(fx.t));
  EXPECT_FALSE(res.invitation.contains(fx.s));
  for (NodeId v : inst.initial_friends()) {
    EXPECT_FALSE(res.invitation.contains(v));
  }

  // Diagnostics are internally consistent.
  EXPECT_NO_THROW(res.diag.params.check());
  EXPECT_GE(res.diag.covered, res.diag.coverage_target);
  EXPECT_GT(res.diag.type1_count, 0u);
  EXPECT_LE(res.diag.l_used, cfg.max_realizations);

  // The contract itself, against the exact oracle. The realization cap
  // sits below l*, so allow a small relative slack on top of ε — the
  // fixtures' concentrated path mass keeps the capped run honest.
  const double f = test::exact_f(inst, res.invitation);
  const double target = (c.alpha - cfg.epsilon) * fx.pmax();
  EXPECT_GE(f, target * 0.9 - 1e-12)
      << "f=" << f << " target=" << target << " pmax=" << fx.pmax();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuaranteeMatrix,
    testing::Values(
        // α sweep on the canonical 3×2 fixture, both policies, greedy.
        MatrixCase{0.1, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 3, 2},
        MatrixCase{0.3, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 3, 2},
        MatrixCase{0.5, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 3, 2},
        MatrixCase{0.7, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 3, 2},
        MatrixCase{0.9, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 3, 2},
        MatrixCase{0.3, Eps0Policy::kPaperProportional,
                   CoverSolverKind::kGreedy, 3, 2},
        MatrixCase{0.7, Eps0Policy::kPaperProportional,
                   CoverSolverKind::kGreedy, 3, 2},
        // Solver sweep at mid α.
        MatrixCase{0.5, Eps0Policy::kBalanced, CoverSolverKind::kDensest, 3,
                   2},
        MatrixCase{0.5, Eps0Policy::kBalanced,
                   CoverSolverKind::kSmallestSets, 3, 2},
        MatrixCase{0.5, Eps0Policy::kBalanced, CoverSolverKind::kExact, 3, 2},
        // Shape sweep: more paths, longer paths, single path.
        MatrixCase{0.4, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 5, 2},
        MatrixCase{0.4, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 2, 4},
        MatrixCase{0.4, Eps0Policy::kBalanced, CoverSolverKind::kGreedy, 1, 3},
        MatrixCase{0.4, Eps0Policy::kBalanced, CoverSolverKind::kDensest, 4,
                   3},
        MatrixCase{0.8, Eps0Policy::kPaperProportional,
                   CoverSolverKind::kExact, 2, 2},
        MatrixCase{0.2, Eps0Policy::kPaperProportional,
                   CoverSolverKind::kSmallestSets, 4, 2}),
    case_name);

}  // namespace
}  // namespace af
