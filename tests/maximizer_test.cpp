#include <gtest/gtest.h>

#include "core/maximizer.hpp"
#include "diffusion/montecarlo.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

TEST(Maximizer, RespectsBudget) {
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(1);
  for (std::size_t budget : {1u, 2u, 3u, 5u, 10u}) {
    MaximizerConfig cfg;
    cfg.budget = budget;
    cfg.realizations = 5'000;
    const auto res = maximize_friending(inst, cfg, rng);
    EXPECT_LE(res.invitation.size(), budget);
  }
}

TEST(Maximizer, BudgetBelowCheapestPathGivesNothingUseful) {
  // Shortest completable path needs t + 2 intermediates = 3 nodes.
  const auto fx = test::ParallelPathFixture::make(2, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(2);
  MaximizerConfig cfg;
  cfg.budget = 2;
  cfg.realizations = 5'000;
  const auto res = maximize_friending(inst, cfg, rng);
  EXPECT_DOUBLE_EQ(res.sample_coverage, 0.0);
  EXPECT_DOUBLE_EQ(test::exact_f(inst, res.invitation), 0.0);
}

TEST(Maximizer, SufficientBudgetCoversOnePath) {
  const auto fx = test::ParallelPathFixture::make(2, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(3);
  MaximizerConfig cfg;
  cfg.budget = 3;  // t + 2 invitable intermediates
  cfg.realizations = 20'000;
  const auto res = maximize_friending(inst, cfg, rng);
  EXPECT_EQ(res.invitation.size(), 3u);
  // One of two paths: f = pmax/2 = 0.125.
  EXPECT_NEAR(test::exact_f(inst, res.invitation), fx.pmax() / 2.0, 1e-12);
  EXPECT_NEAR(res.sample_coverage, fx.pmax() / 2.0, 0.02);
}

TEST(Maximizer, LargeBudgetApproachesPmax) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(4);
  MaximizerConfig cfg;
  cfg.budget = 10;  // enough for all paths (t + 3 nodes needed)
  cfg.realizations = 20'000;
  const auto res = maximize_friending(inst, cfg, rng);
  EXPECT_NEAR(test::exact_f(inst, res.invitation), fx.pmax(), 1e-12);
}

TEST(Maximizer, CoverageMonotoneInBudget) {
  const auto fx = test::ParallelPathFixture::make(3, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(5);
  double prev = -1.0;
  for (std::size_t budget : {1u, 2u, 3u, 4u, 5u}) {
    MaximizerConfig cfg;
    cfg.budget = budget;
    cfg.realizations = 20'000;
    Rng local(42);  // same realization sample per budget
    const auto res = maximize_friending(inst, cfg, local);
    const double f = test::exact_f(inst, res.invitation);
    EXPECT_GE(f, prev - 1e-12) << "budget " << budget;
    prev = f;
  }
}

TEST(Maximizer, InSampleCoverageTracksOutOfSample) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(6);
  MaximizerConfig cfg;
  cfg.budget = 2;
  cfg.realizations = 30'000;
  const auto res = maximize_friending(inst, cfg, rng);
  EXPECT_NEAR(res.sample_coverage, test::exact_f(inst, res.invitation),
              0.02);
}

TEST(Maximizer, UnreachableTargetGivesZero) {
  Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  const Graph g = b.build(WeightScheme::inverse_degree());
  const FriendingInstance inst(g, 0, 2);
  Rng rng(7);
  MaximizerConfig cfg;
  cfg.budget = 4;
  cfg.realizations = 2'000;
  const auto res = maximize_friending(inst, cfg, rng);
  EXPECT_EQ(res.type1_count, 0u);
  EXPECT_TRUE(res.invitation.empty());
}

TEST(Maximizer, RejectsBadConfig) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(8);
  MaximizerConfig cfg;
  cfg.budget = 0;
  EXPECT_THROW(maximize_friending(inst, cfg, rng), precondition_error);
}

}  // namespace
}  // namespace af
