#include <gtest/gtest.h>

#include <vector>

#include "diffusion/forward_process.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/invitation.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

// ------------------------------------------------------------- instance

TEST(Instance, CachesInitialFriends) {
  const Graph g = star_graph(5).build(WeightScheme::inverse_degree());
  // s = leaf 1; N_s = {0}; t = leaf 2.
  const FriendingInstance inst(g, 1, 2);
  EXPECT_EQ(inst.initial_friends(), (std::vector<NodeId>{0}));
  EXPECT_TRUE(inst.is_initial_friend(0));
  EXPECT_FALSE(inst.is_initial_friend(3));
  EXPECT_FALSE(inst.invitable(1));  // s
  EXPECT_FALSE(inst.invitable(0));  // N_s
  EXPECT_TRUE(inst.invitable(2));
}

TEST(Instance, RejectsDegenerateEndpoints) {
  const Graph g = path_graph(4).build(WeightScheme::inverse_degree());
  EXPECT_THROW(FriendingInstance(g, 1, 1), precondition_error);  // s == t
  EXPECT_THROW(FriendingInstance(g, 1, 2), precondition_error);  // friends
  EXPECT_THROW(FriendingInstance(g, 0, 9), precondition_error);  // range
}

// ------------------------------------------------------------- invitations

TEST(InvitationSet, AddContainsDedup) {
  InvitationSet inv(5);
  EXPECT_TRUE(inv.add(3));
  EXPECT_FALSE(inv.add(3));
  EXPECT_TRUE(inv.contains(3));
  EXPECT_FALSE(inv.contains(1));
  EXPECT_EQ(inv.size(), 1u);
}

TEST(InvitationSet, FullExcludesSAndNs) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const InvitationSet full = InvitationSet::full(inst);
  EXPECT_FALSE(full.contains(fx.s));
  for (NodeId v : inst.initial_friends()) EXPECT_FALSE(full.contains(v));
  EXPECT_TRUE(full.contains(fx.t));
  EXPECT_EQ(full.size(),
            fx.graph.num_nodes() - 1 - inst.initial_friends().size());
}

TEST(InvitationSet, NormalizeDropsNoOps) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  InvitationSet inv(fx.graph.num_nodes());
  inv.add(fx.s);
  inv.add(inst.initial_friends()[0]);
  inv.add(fx.t);
  EXPECT_EQ(inv.normalize(inst), 2u);
  EXPECT_EQ(inv.size(), 1u);
  EXPECT_TRUE(inv.contains(fx.t));
}

// ------------------------------------------------------- forward process

TEST(ForwardProcess, TargetNotInvitedNeverSucceeds) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  InvitationSet inv(fx.graph.num_nodes());  // empty
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(proc.run(inv, rng).target_reached);
  }
}

TEST(ForwardProcess, DegreeOneChainAlwaysActivates) {
  // s=0 — 1 — t=2 with w(1,2) = 1.0: node 2's threshold is always ≤ 1 →
  // it activates as soon as it is invited (1 ∈ N_s from the start).
  Graph::Builder b2(3);
  b2.add_edge(0, 1, 0.5, 1.0).add_edge(1, 2, 1.0, 0.5);
  const Graph g = b2.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 2);
  ForwardProcess proc(inst);
  InvitationSet inv(3);
  inv.add(2);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto r = proc.run(inv, rng);
    EXPECT_TRUE(r.target_reached);
    EXPECT_EQ(r.new_friends, 1u);
  }
}

TEST(ForwardProcess, FrequencyMatchesArcWeight) {
  // s=0 — 1 — t=2 with w(1,2) = 0.3: t activates iff θ_t ≤ 0.3.
  Graph::Builder b(3);
  b.add_edge(0, 1, 0.5, 1.0).add_edge(1, 2, 0.3, 0.5);
  const Graph g = b.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 2);
  ForwardProcess proc(inst);
  InvitationSet inv(3);
  inv.add(2);
  Rng rng(11);
  int hits = 0;
  const int n = 60'000;
  for (int i = 0; i < n; ++i) hits += proc.run(inv, rng).target_reached;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.012);
}

TEST(ForwardProcess, MutualFriendWeightsAccumulate) {
  // t=3 is adjacent to v1=1 and v2=2, each contributing 0.5; s adjacent
  // to both v1,v2 with weight 1 → both always become friends... they are
  // already N_s. So t always accumulates 1.0 ≥ θ: success certain.
  Graph::Builder b(4);
  b.add_edge(0, 1, 0.6, 0.4).add_edge(0, 2, 0.6, 0.4);
  b.add_edge(1, 3, 0.5, 0.3).add_edge(2, 3, 0.5, 0.3);
  const Graph g = b.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 3);
  ForwardProcess proc(inst);
  InvitationSet inv(4);
  inv.add(3);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(proc.run(inv, rng).target_reached);
  }
}

TEST(ForwardProcess, UniverseMismatchThrows) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  InvitationSet wrong(2);
  Rng rng(1);
  EXPECT_THROW(proc.run(wrong, rng), precondition_error);
}

// -------------------------------------------- deterministic threshold runs

TEST(DeterministicProcess, ExampleOneStyleCascade) {
  // A reconstruction of the paper's Example 1 mechanics: uniform weight
  // 0.1 per ordered pair, thresholds 0.15 — a node joins when TWO current
  // friends are its neighbors.
  //
  // Layout: s(0); N_s = {1, 2}; chain: v3(3) adjacent to both 1 and 2;
  // v4(4) adjacent to 3 and 1; t(5) adjacent to 3 and 4.
  Graph::Builder b(6);
  const double w = 0.1;
  b.add_edge(0, 1, w, w).add_edge(0, 2, w, w);
  b.add_edge(1, 3, w, w).add_edge(2, 3, w, w);
  b.add_edge(1, 4, w, w).add_edge(3, 4, w, w);
  b.add_edge(3, 5, w, w).add_edge(4, 5, w, w);
  const Graph g = b.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 5);
  ForwardProcess proc(inst);

  const std::vector<double> theta(6, 0.15);

  // Everyone invited: 3 joins (friends 1,2 → 0.2 ≥ 0.15), then 4
  // (friends 1,3), then t (friends 3,4).
  InvitationSet all(6);
  all.add(3);
  all.add(4);
  all.add(5);
  auto r = proc.run_with_thresholds(all, theta);
  EXPECT_TRUE(r.target_reached);
  EXPECT_EQ(r.new_friends, (std::vector<NodeId>{3, 4, 5}));

  // Like v2 in Example 1: node 4 invited but 3 is not — 4 has only one
  // current friend (1) → 0.1 < 0.15, cascade stalls, t unreachable.
  InvitationSet partial(6);
  partial.add(4);
  partial.add(5);
  r = proc.run_with_thresholds(partial, theta);
  EXPECT_FALSE(r.target_reached);
  EXPECT_TRUE(r.new_friends.empty());

  // Like v3 in Example 1: node 3 could join but is not invited.
  InvitationSet no3(6);
  no3.add(5);
  r = proc.run_with_thresholds(no3, theta);
  EXPECT_FALSE(r.target_reached);
}

TEST(DeterministicProcess, RoundsMatterNotOrder) {
  // The literal Eq. (2) evaluates Φ against the frozen C_i; nodes
  // unlocked by this round's joiners join the NEXT round.
  Graph::Builder b(4);
  b.add_edge(0, 1, 0.7, 0.6).add_edge(1, 2, 0.6, 0.3).add_edge(2, 3, 0.6,
                                                               0.3);
  const Graph g = b.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 3);
  ForwardProcess proc(inst);
  InvitationSet inv(4);
  inv.add(2);
  inv.add(3);
  const std::vector<double> theta{0.5, 0.5, 0.5, 0.5};
  const auto r = proc.run_with_thresholds(inv, theta);
  EXPECT_TRUE(r.target_reached);
  EXPECT_EQ(r.new_friends, (std::vector<NodeId>{2, 3}));
}

TEST(DeterministicProcess, ThresholdBoundaryIsInclusive) {
  // Acceptance requires Σw ≥ θ (Eq. 1): equality counts.
  Graph::Builder b(3);
  b.add_edge(0, 1, 0.5, 0.5).add_edge(1, 2, 0.4, 0.5);
  const Graph g = b.build_with_explicit_weights();
  const FriendingInstance inst(g, 0, 2);
  ForwardProcess proc(inst);
  InvitationSet inv(3);
  inv.add(2);
  EXPECT_TRUE(
      proc.run_with_thresholds(inv, std::vector<double>{1, 1, 0.4})
          .target_reached);
  EXPECT_FALSE(
      proc.run_with_thresholds(inv, std::vector<double>{1, 1, 0.41})
          .target_reached);
}

TEST(DeterministicProcess, WrongThresholdArityThrows) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  InvitationSet inv(fx.graph.num_nodes());
  EXPECT_THROW(proc.run_with_thresholds(inv, std::vector<double>{0.5}),
               precondition_error);
}

// -------------------------------------------------- realization-based runs

TEST(ProcessUnderRealization, FollowsSelectedEdges) {
  const auto fx = test::ParallelPathFixture::make(1, 2);
  // Nodes: s=0, t=1, intermediates 2 (s-side), 3 (t-side).
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  InvitationSet inv(fx.graph.num_nodes());
  inv.add(3);
  inv.add(1);

  // Realization where 3 selected 2 (∈ N_s) and t selected 3: success.
  std::vector<NodeId> g1(fx.graph.num_nodes(), kNoNode);
  g1[3] = 2;
  g1[1] = 3;
  EXPECT_TRUE(proc.run_under_realization(inv, g1).target_reached);

  // Realization where 3 selected t instead: no chain from N_s.
  std::vector<NodeId> g2(fx.graph.num_nodes(), kNoNode);
  g2[3] = 1;
  g2[1] = 3;
  EXPECT_FALSE(proc.run_under_realization(inv, g2).target_reached);

  // Success realization but node 3 not invited: blocked.
  InvitationSet only_t(fx.graph.num_nodes());
  only_t.add(1);
  EXPECT_FALSE(proc.run_under_realization(only_t, g1).target_reached);
}

}  // namespace
}  // namespace af
