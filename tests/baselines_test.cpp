#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

// ----------------------------------------------------------------------- HD

TEST(HighDegree, AlwaysContainsTarget) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  for (std::size_t k : {1u, 2u, 5u}) {
    const auto inv = high_degree_invitation(inst, k);
    EXPECT_TRUE(inv.contains(fx.t));
    EXPECT_LE(inv.size(), k);
  }
}

TEST(HighDegree, PicksHubsFirst) {
  // Star with an attached path: hub is node 0.
  //   star 0-(1..4); path 4-5-6; s=1, t=6.
  Graph::Builder b(7);
  b.add_edge(0, 1).add_edge(0, 2).add_edge(0, 3).add_edge(0, 4);
  b.add_edge(4, 5).add_edge(5, 6);
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 1, 6);
  const auto inv = high_degree_invitation(inst, 2);
  EXPECT_TRUE(inv.contains(6));  // t
  // N_s = {0}; the highest-degree invitable node is 4 (degree 2)... all
  // of 2,3,4,5 have degree tie ≤ 2; node 4 has degree 2 and smallest
  // id among degree-2 nodes is 4? Degrees: 2:1, 3:1, 4:2, 5:2.
  EXPECT_TRUE(inv.contains(4));
}

TEST(HighDegree, ExcludesSAndNs) {
  Rng rng(3);
  const Graph g = build(barabasi_albert(100, 3, rng));
  for (NodeId s = 0; s < 100; ++s) {
    for (NodeId t = 0; t < 100; ++t) {
      if (s == t || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      const auto inv = high_degree_invitation(inst, 20);
      EXPECT_EQ(inv.size(), 20u);
      EXPECT_FALSE(inv.contains(s));
      for (NodeId v : inst.initial_friends()) EXPECT_FALSE(inv.contains(v));
      return;
    }
  }
}

TEST(HighDegree, DeterministicOrder) {
  Rng rng(5);
  const Graph g = build(barabasi_albert(60, 2, rng));
  NodeId s = 0, t = 0;
  for (NodeId a = 0; a < 60 && t == 0; ++a) {
    for (NodeId c = 1; c < 60; ++c) {
      if (a != c && !g.has_edge(a, c)) {
        s = a;
        t = c;
        break;
      }
    }
  }
  const FriendingInstance inst(g, s, t);
  const auto a = high_degree_invitation(inst, 10);
  const auto b = high_degree_invitation(inst, 10);
  EXPECT_EQ(a.members(), b.members());
}

TEST(HighDegree, BudgetOneIsJustTarget) {
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto inv = high_degree_invitation(inst, 1);
  EXPECT_EQ(inv.size(), 1u);
  EXPECT_TRUE(inv.contains(fx.t));
  EXPECT_THROW(high_degree_invitation(inst, 0), precondition_error);
}

// ----------------------------------------------------------------------- SP

TEST(ShortestPath, CoversTheShortestRouteFirst) {
  // Two routes: short (via 2) and long (via 3,4,5).
  Graph::Builder b(7);
  b.add_edge(0, 2).add_edge(2, 6);                               // s-2-?
  b.add_edge(2, 1);                                              // short
  b.add_edge(0, 3).add_edge(3, 4).add_edge(4, 5).add_edge(5, 1); // long
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 0, 1);
  // N_s = {2, 3}: the shortest s→t path is s-2-t (2 ∈ N_s, t adjacent).
  const auto inv = shortest_path_invitation(inst, 1);
  EXPECT_EQ(inv.size(), 1u);
  EXPECT_TRUE(inv.contains(1));  // just t — the short path needs nothing else
}

TEST(ShortestPath, SecondDisjointPathWhenBudgetAllows) {
  const auto fx = test::ParallelPathFixture::make(2, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  // Path intermediates: {2,3,4} and {5,6,7}; N_s = {2,5}.
  // Budget 5: t + both paths' invitable intermediates {3,4} and {6,7}.
  const auto inv = shortest_path_invitation(inst, 5);
  EXPECT_EQ(inv.size(), 5u);
  EXPECT_TRUE(inv.contains(fx.t));
  EXPECT_TRUE(inv.contains(3));
  EXPECT_TRUE(inv.contains(4));
  // One of the second path's nodes must be present too.
  EXPECT_TRUE(inv.contains(6) || inv.contains(7));
}

TEST(ShortestPath, ExcludesSAndNs) {
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const auto inv = shortest_path_invitation(inst, 50);
  EXPECT_FALSE(inv.contains(fx.s));
  for (NodeId v : inst.initial_friends()) EXPECT_FALSE(inv.contains(v));
}

TEST(ShortestPath, FillerIsDistanceOrderedAndDeterministic) {
  Rng rng(7);
  const Graph g = build(barabasi_albert(80, 3, rng));
  for (NodeId s = 0; s < 80; ++s) {
    for (NodeId t = 0; t < 80; ++t) {
      if (s == t || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      const auto a = shortest_path_invitation(inst, 30);
      const auto b = shortest_path_invitation(inst, 30);
      EXPECT_EQ(a.members(), b.members());
      EXPECT_EQ(a.size(), 30u);
      return;
    }
  }
}

TEST(ShortestPath, DisconnectedTargetStillReturnsTarget) {
  Graph::Builder b(5);
  b.add_edge(0, 1).add_edge(2, 3).add_edge(3, 4);
  const Graph g = build(std::move(b));
  const FriendingInstance inst(g, 0, 3);
  const auto inv = shortest_path_invitation(inst, 3);
  EXPECT_TRUE(inv.contains(3));
  // No s→t path and no reachable filler: only t.
  EXPECT_EQ(inv.size(), 1u);
}

// ------------------------------------------------------------------- random

TEST(RandomBaseline, SizeAndMembership) {
  const auto fx = test::ParallelPathFixture::make(3, 3);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(11);
  const auto inv = random_invitation(inst, 4, rng);
  EXPECT_EQ(inv.size(), 4u);
  EXPECT_TRUE(inv.contains(fx.t));
  EXPECT_FALSE(inv.contains(fx.s));
  for (NodeId v : inst.initial_friends()) EXPECT_FALSE(inv.contains(v));
}

TEST(RandomBaseline, BudgetBeyondUniverseIsClamped) {
  const auto fx = test::ParallelPathFixture::make(1, 1);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  Rng rng(13);
  const auto inv = random_invitation(inst, 100, rng);
  // Universe: 3 nodes; invitable: t only (the single intermediate ∈ N_s).
  EXPECT_EQ(inv.size(), 1u);
}

}  // namespace
}  // namespace af
