#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "cover/densest.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

SetFamily make_family(NodeId universe,
                      const std::vector<std::vector<NodeId>>& sets,
                      const std::vector<std::uint64_t>& mult = {}) {
  SetFamily fam(universe);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const std::uint64_t reps = mult.empty() ? 1 : mult[i];
    for (std::uint64_t r = 0; r < reps; ++r) fam.add_set(sets[i]);
  }
  return fam;
}

/// Exhaustive densest subfamily (weight / |union ∖ free|).
double brute_best_density(const SetFamily& fam,
                          const std::vector<char>& free_elems = {}) {
  double best = 0.0;
  const std::size_t ns = fam.num_sets();
  for (std::uint64_t mask = 1; mask < (1ULL << ns); ++mask) {
    double w = 0.0;
    std::set<NodeId> uni;
    for (std::size_t i = 0; i < ns; ++i) {
      if (!(mask >> i & 1)) continue;
      w += static_cast<double>(fam.multiplicity(static_cast<std::uint32_t>(i)));
      for (NodeId v : fam.elements(static_cast<std::uint32_t>(i))) {
        if (free_elems.empty() || !free_elems[v]) uni.insert(v);
      }
    }
    if (uni.empty()) return std::numeric_limits<double>::infinity();
    best = std::max(best, w / static_cast<double>(uni.size()));
  }
  return best;
}

// ------------------------------------------------------------- exact engine

TEST(DensestExact, SingleSet) {
  const SetFamily fam = make_family(5, {{0, 1, 2}});
  const auto res = densest_subfamily_exact(fam);
  EXPECT_EQ(res.sets.size(), 1u);
  EXPECT_DOUBLE_EQ(res.density, 1.0 / 3.0);
}

TEST(DensestExact, OverlappingSetsBeatDisjoint) {
  // Two sets sharing both elements: density 2/2 = 1; a third disjoint
  // fat set would only dilute.
  const SetFamily fam =
      make_family(10, {{0, 1}, {0, 1}, {4, 5, 6, 7}});
  const auto res = densest_subfamily_exact(fam);
  // {0,1} stored once with multiplicity 2 → weight 2, union 2.
  EXPECT_DOUBLE_EQ(res.density, 1.0);
  EXPECT_EQ(res.union_elements, (std::vector<NodeId>{0, 1}));
}

TEST(DensestExact, MultiplicityRaisesDensity) {
  const SetFamily fam =
      make_family(10, {{0, 1, 2}, {5}}, {5, 1});
  const auto res = densest_subfamily_exact(fam);
  // {0,1,2} with weight 5 → 5/3; {5} alone → 1; both → 6/4.
  EXPECT_NEAR(res.density, 5.0 / 3.0, 1e-9);
}

TEST(DensestExact, FreeElementsChangeTheOptimum) {
  const SetFamily fam = make_family(10, {{0, 1, 2, 3}, {7, 8}});
  DensestOptions opts;
  opts.free_elements.assign(10, 0);
  opts.free_elements[0] = opts.free_elements[1] = opts.free_elements[2] = 1;
  // First set now costs only {3} → density 1; second still 1/2.
  const auto res = densest_subfamily_exact(fam, opts);
  EXPECT_DOUBLE_EQ(res.density, 1.0);
  EXPECT_EQ(res.union_elements, (std::vector<NodeId>{3}));
}

TEST(DensestExact, FullyFreeSetIsInfinitelyDense) {
  const SetFamily fam = make_family(6, {{0, 1}, {3}});
  DensestOptions opts;
  opts.free_elements.assign(6, 0);
  opts.free_elements[0] = opts.free_elements[1] = 1;
  const auto res = densest_subfamily_exact(fam, opts);
  EXPECT_TRUE(std::isinf(res.density));
  EXPECT_EQ(res.sets.size(), 1u);
  EXPECT_TRUE(res.union_elements.empty());
}

TEST(DensestExact, ExcludedSetsIgnored) {
  const SetFamily fam = make_family(6, {{0}, {1, 2, 3}});
  DensestOptions opts;
  opts.excluded_sets.assign(2, 0);
  opts.excluded_sets[0] = 1;  // exclude the dense singleton
  const auto res = densest_subfamily_exact(fam, opts);
  ASSERT_EQ(res.sets.size(), 1u);
  EXPECT_EQ(res.sets[0], 1u);
}

TEST(DensestExact, EmptyEligibleFamilyGivesEmpty) {
  const SetFamily fam = make_family(4, {{0}});
  DensestOptions opts;
  opts.excluded_sets.assign(1, 1);
  const auto res = densest_subfamily_exact(fam, opts);
  EXPECT_TRUE(res.sets.empty());
}

// Property: exact engine matches brute force on random small families.
class DensestProperty : public testing::TestWithParam<int> {};

TEST_P(DensestProperty, ExactMatchesBruteForce) {
  Rng rng(7000 + GetParam());
  const NodeId universe = 8;
  const std::size_t num_sets = 2 + rng.uniform_int(std::uint64_t{6});
  std::vector<std::vector<NodeId>> sets;
  for (std::size_t i = 0; i < num_sets; ++i) {
    std::vector<NodeId> s;
    for (NodeId v = 0; v < universe; ++v) {
      if (rng.bernoulli(0.35)) s.push_back(v);
    }
    if (s.empty()) s.push_back(static_cast<NodeId>(rng.uniform_int(
        std::uint64_t{universe})));
    sets.push_back(std::move(s));
  }
  const SetFamily fam = make_family(universe, sets);
  const auto res = densest_subfamily_exact(fam);
  const double brute = brute_best_density(fam);
  EXPECT_NEAR(res.density, brute, 1e-9) << "seed " << GetParam();
}

TEST_P(DensestProperty, PeelingNeverBeatsExactAndIsFeasible) {
  Rng rng(8000 + GetParam());
  const NodeId universe = 10;
  std::vector<std::vector<NodeId>> sets;
  const std::size_t num_sets = 3 + rng.uniform_int(std::uint64_t{8});
  for (std::size_t i = 0; i < num_sets; ++i) {
    std::vector<NodeId> s;
    for (NodeId v = 0; v < universe; ++v) {
      if (rng.bernoulli(0.3)) s.push_back(v);
    }
    if (s.empty()) s.push_back(0);
    sets.push_back(std::move(s));
  }
  const SetFamily fam = make_family(universe, sets);
  const auto exact = densest_subfamily_exact(fam);
  const auto peel = densest_subfamily_peeling(fam);
  ASSERT_FALSE(peel.sets.empty());
  EXPECT_LE(peel.density, exact.density + 1e-9);
  // Peeling's reported density must be internally consistent.
  double w = 0.0;
  std::set<NodeId> uni;
  for (std::uint32_t i : peel.sets) {
    w += static_cast<double>(fam.multiplicity(i));
    uni.insert(fam.elements(i).begin(), fam.elements(i).end());
  }
  EXPECT_NEAR(peel.density, w / static_cast<double>(uni.size()), 1e-9);
  // ...and within the max-set-size approximation factor of optimal (the
  // classic peeling guarantee; set sizes here are ≤ 10).
  EXPECT_GE(peel.density * 10.0, exact.density);
}

INSTANTIATE_TEST_SUITE_P(Random, DensestProperty, testing::Range(0, 25));

// ---------------------------------------------------------------- peeling

TEST(DensestPeeling, FindsTheObviousCore) {
  // A dense core of 3 sets on 2 elements plus noise singletons.
  const SetFamily fam = make_family(
      12, {{0, 1}, {0, 1}, {1, 0}, {5}, {6}, {7}});
  const auto res = densest_subfamily_peeling(fam);
  EXPECT_DOUBLE_EQ(res.density, 1.5);  // weight 3 / union 2
}

TEST(DensestPeeling, HandlesFreeElements) {
  const SetFamily fam = make_family(6, {{0, 1}, {3}});
  DensestOptions opts;
  opts.free_elements.assign(6, 0);
  opts.free_elements[0] = opts.free_elements[1] = 1;
  const auto res = densest_subfamily_peeling(fam, opts);
  EXPECT_TRUE(std::isinf(res.density));
}

}  // namespace
}  // namespace af
