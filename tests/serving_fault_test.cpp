// Fault-injection tests for the serving layer (DESIGN.md §10): admission
// overload must reject structurally (kOverloaded, immediately, no lost
// futures), expired deadlines must short-circuit before any sampler work
// (observable through cache_stats — no pair cache is ever created), and
// coalesced duplicates must be served from one execution.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

using Clock = std::chrono::steady_clock;

Graph make_graph() {
  Rng rng(11);
  return barabasi_albert(60, 3, rng).build(WeightScheme::inverse_degree());
}

/// The k-th valid (s,t) pair — distinct, not already friends — scanning
/// (s, n−1−s). The BA graph is connected, so these queries all do real
/// sampling work.
std::pair<NodeId, NodeId> valid_pair(const Graph& g, std::size_t k) {
  std::size_t seen = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const NodeId t = g.num_nodes() - 1 - s;
    if (s == t || g.has_edge(s, t)) continue;
    if (seen++ == k) return {s, t};
  }
  ADD_FAILURE() << "fixture graph has fewer than " << k + 1
                << " valid pairs";
  return {0, 1};
}

/// A query that keeps one serving worker busy for tens of milliseconds
/// (hundreds of thousands of backward walks), dwarfing the microseconds
/// the test needs to stage the queue behind it.
QuerySpec slow_plug(const Graph& g) {
  const auto [s, t] = valid_pair(g, 0);
  return {s, t, MaximizeSpec{.budget = 4, .realizations = 600'000}};
}

QuerySpec cheap_query(const Graph& g, std::size_t k = 1) {
  const auto [s, t] = valid_pair(g, k);
  return {s, t, MaximizeSpec{.budget = 4, .realizations = 2'000}};
}

/// Spins until the admission queue is empty — i.e. every submitted task
/// has been dequeued (it may still be executing).
void wait_until_drained(const Planner& planner) {
  while (planner.serving_stats().queued > 0) std::this_thread::yield();
}

TEST(ServingFault, FullQueueRejectsWithStructuredOverload) {
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 1;
  opts.async_queue_depth = 1;
  Planner planner(g, opts);

  // Stage: the single worker is pinned on the plug (wait for it to leave
  // the queue), the depth-1 queue holds the filler. Every further
  // admission must bounce.
  std::future<PlanResult> plug = planner.plan_async(slow_plug(g));
  wait_until_drained(planner);
  std::future<PlanResult> filler = planner.plan_async(cheap_query(g, 1));

  constexpr int kBurst = 50;
  std::vector<std::future<PlanResult>> burst;
  for (int i = 0; i < kBurst; ++i) {
    burst.push_back(planner.plan_async(cheap_query(g, 2)));
  }

  // Rejections are immediate and structured: the futures are already
  // resolved (no blocking happened) with kOverloaded and a message
  // naming the depth.
  int overloaded = 0;
  for (auto& f : burst) {
    ASSERT_TRUE(f.valid());
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const PlanResult r = f.get();
    EXPECT_EQ(r.status, PlanStatus::kOverloaded);
    EXPECT_NE(r.message.find("admission queue full"), std::string::npos);
    EXPECT_TRUE(r.invitation.empty());
    ++overloaded;
  }
  EXPECT_EQ(overloaded, kBurst);

  // The admitted queries still complete normally — backpressure sheds
  // the burst, never the work already accepted.
  EXPECT_EQ(plug.get().status, PlanStatus::kOk);
  EXPECT_EQ(filler.get().status, PlanStatus::kOk);

  const ServingStats stats = planner.serving_stats();
  EXPECT_EQ(stats.rejected_overloaded, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServingFault, ExpiredDeadlineShortCircuitsBeforeAnySamplerWork) {
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 2;
  Planner planner(g, opts);

  constexpr int kExpired = 8;
  std::vector<std::future<PlanResult>> futures;
  for (int i = 0; i < kExpired; ++i) {
    QuerySpec q = cheap_query(g, static_cast<NodeId>(1 + i));
    q.deadline = Clock::now() - std::chrono::milliseconds(1);
    futures.push_back(planner.plan_async(q));
  }
  for (auto& f : futures) {
    const PlanResult r = f.get();
    EXPECT_EQ(r.status, PlanStatus::kDeadlineExceeded);
    EXPECT_TRUE(r.invitation.empty());
  }
  // The short-circuit happened before the pipeline: no pair cache was
  // created, no sample was drawn, nothing was charged.
  const PlannerCacheStats cache = planner.cache_stats();
  EXPECT_EQ(cache.entries, 0u);
  EXPECT_EQ(cache.charged_bytes, 0u);
  const ServingStats stats = planner.serving_stats();
  EXPECT_EQ(stats.expired_deadline, static_cast<std::uint64_t>(kExpired));
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServingFault, SequentialPlanHonorsExpiredDeadlinesToo) {
  // Same semantics on the synchronous entry point: an expired deadline is
  // refused before validation or pair-cache creation.
  const Graph g = make_graph();
  Planner planner(g, PlannerOptions{.threads = 1});
  QuerySpec q = cheap_query(g);
  q.deadline = Clock::now() - std::chrono::seconds(1);
  const PlanResult r = planner.plan(q);
  EXPECT_EQ(r.status, PlanStatus::kDeadlineExceeded);
  EXPECT_EQ(planner.cache_stats().entries, 0u);
}

TEST(ServingFault, DefaultDeadlineAppliesAtAdmission) {
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 1;
  opts.async_workers = 1;
  // A default deadline no dequeue can beat: every deadline-less query
  // expires in the queue.
  opts.default_deadline = std::chrono::nanoseconds(1);
  Planner planner(g, opts);

  std::future<PlanResult> f = planner.plan_async(cheap_query(g));
  EXPECT_EQ(f.get().status, PlanStatus::kDeadlineExceeded);
  // An explicit per-query deadline overrides the default.
  QuerySpec generous = cheap_query(g);
  generous.deadline = Clock::now() + std::chrono::minutes(5);
  EXPECT_EQ(planner.plan_async(generous).get().status, PlanStatus::kOk);
}

TEST(ServingFault, QueuedDuplicatesCoalesceIntoOneExecution) {
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 1;
  Planner planner(g, opts);

  // Sequential oracle for the duplicated spec.
  const QuerySpec dup_spec = cheap_query(g, 3);
  PlanResult reference;
  {
    Planner oracle(g, opts);
    reference = oracle.plan(dup_spec);
    ASSERT_EQ(reference.status, PlanStatus::kOk);
  }

  // The plug occupies the single worker while the duplicates queue up
  // behind it; the first duplicate dequeued claims the rest.
  std::future<PlanResult> plug = planner.plan_async(slow_plug(g));
  constexpr int kDuplicates = 6;
  std::vector<std::future<PlanResult>> dups;
  for (int i = 0; i < kDuplicates; ++i) {
    dups.push_back(planner.plan_async(dup_spec));
  }

  for (auto& f : dups) {
    const PlanResult r = f.get();
    EXPECT_EQ(r.status, PlanStatus::kOk);
    EXPECT_EQ(r.invitation.members(), reference.invitation.members());
    EXPECT_EQ(r.sample_coverage, reference.sample_coverage);
  }
  EXPECT_EQ(plug.get().status, PlanStatus::kOk);

  const ServingStats stats = planner.serving_stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kDuplicates) + 1);
  // One execution served all duplicates: plug + one dup leader ran,
  // the rest were claimed from the queue.
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kDuplicates) - 1);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServingFault, PriorityOrdersDequeueUnderContention) {
  const Graph g = make_graph();
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = 1;
  Planner planner(g, opts);

  // While the worker is pinned on the plug, queue a low-priority query
  // before a high-priority one; the high-priority one must run first.
  // Completion order is observable through StageTimings.queue_seconds:
  // the earlier-dequeued query waited less.
  std::future<PlanResult> plug = planner.plan_async(slow_plug(g));
  QuerySpec low = cheap_query(g, 4);
  low.priority = -10;
  QuerySpec high = cheap_query(g, 5);
  high.priority = 10;
  std::future<PlanResult> low_f = planner.plan_async(low);
  std::future<PlanResult> high_f = planner.plan_async(high);

  const PlanResult low_r = low_f.get();
  const PlanResult high_r = high_f.get();
  EXPECT_EQ(low_r.status, PlanStatus::kOk);
  EXPECT_EQ(high_r.status, PlanStatus::kOk);
  EXPECT_LT(high_r.timings.queue_seconds, low_r.timings.queue_seconds);
  (void)plug.get();
}

}  // namespace
}  // namespace af
