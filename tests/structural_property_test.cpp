// Cross-cutting structural property tests on random graphs: articulation
// semantics of the block-cut tree, disjoint-path guarantees, weighted I/O
// round-trips, and consistency between the two Process-1 implementations.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "diffusion/forward_process.hpp"
#include "graph/algorithms.hpp"
#include "graph/blockcut.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

Graph build(Graph::Builder b) {
  return b.build(WeightScheme::inverse_degree());
}

/// Number of connected components after deleting one vertex.
std::size_t components_without(const Graph& g, NodeId removed) {
  std::vector<char> seen(g.num_nodes(), 0);
  seen[removed] = 1;
  std::size_t comps = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (seen[s]) continue;
    ++comps;
    stack.push_back(s);
    seen[s] = 1;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId u : g.neighbors(v)) {
        if (!seen[u]) {
          seen[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return comps;
}

std::size_t num_components(const Graph& g) {
  std::set<std::uint32_t> labels;
  for (auto c : connected_components(g)) labels.insert(c);
  return labels.size();
}

class RandomGraphProperty : public testing::TestWithParam<int> {};

TEST_P(RandomGraphProperty, CutVerticesAreExactlyTheSeparators) {
  Rng rng(9000 + GetParam());
  const NodeId n = 12;
  const Graph g = build(gnm_random(n, 14 + GetParam() % 8, rng));
  const BlockCutTree bct(g);
  const std::size_t base = num_components(g);
  for (NodeId v = 0; v < n; ++v) {
    // Removing an isolated vertex reduces the count; skip those.
    if (g.degree(v) == 0) continue;
    const std::size_t after = components_without(g, v);
    // Components not containing v are unaffected; v's component either
    // stays one piece (non-cut) or splits (cut).
    const bool separates = after > base;
    EXPECT_EQ(bct.is_cut_vertex(v), separates)
        << "node " << v << " seed " << GetParam();
  }
}

TEST_P(RandomGraphProperty, DisjointPathsAreShortestFirstAndDisjoint) {
  Rng rng(9100 + GetParam());
  const Graph g = build(gnm_random(20, 40, rng));
  for (NodeId s = 0; s < 20; ++s) {
    for (NodeId t = 0; t < 20; ++t) {
      if (s == t) continue;
      const auto paths = node_disjoint_shortest_paths(g, s, t, 4);
      std::set<NodeId> used;
      std::size_t prev_len = 0;
      const auto base = bfs_distance(g, s, t);
      for (std::size_t i = 0; i < paths.size(); ++i) {
        const auto& p = paths[i];
        ASSERT_GE(p.size(), 2u);
        EXPECT_EQ(p.front(), s);
        EXPECT_EQ(p.back(), t);
        // Consecutive nodes adjacent.
        for (std::size_t j = 1; j < p.size(); ++j) {
          EXPECT_TRUE(g.has_edge(p[j - 1], p[j]));
        }
        // Intermediates pairwise disjoint across paths.
        for (NodeId v : p) {
          if (v == s || v == t) continue;
          EXPECT_TRUE(used.insert(v).second);
        }
        // Non-decreasing lengths; the first is a true shortest path.
        EXPECT_GE(p.size(), prev_len);
        prev_len = p.size();
        if (i == 0) {
          EXPECT_EQ(p.size(), static_cast<std::size_t>(base) + 1);
        }
      }
      if (paths.empty()) {
        EXPECT_EQ(base, kUnreachable);
      }
    }
  }
}

TEST_P(RandomGraphProperty, WeightedIoRoundTripsExactly) {
  Rng rng(9200 + GetParam());
  // Random normalized weights survive a save/load cycle bit-for-bit
  // enough for the model (printed with default precision → compare
  // loosely but tightly enough to catch swapped directions).
  Graph::Builder b(15);
  Rng wr(77);
  const Graph g = [&] {
    auto builder = gnm_random(15, 30, rng);
    return builder.build(WeightScheme::random_normalized(0.9), &wr);
  }();
  const std::string path = testing::TempDir() + "/af_roundtrip_" +
                           std::to_string(GetParam()) + ".txt";
  ASSERT_TRUE(save_weighted_edge_list(g, path));
  const LoadedGraph lg = load_weighted_edge_list(path);
  ASSERT_EQ(lg.graph.num_nodes(), g.num_nodes());
  ASSERT_EQ(lg.graph.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_NEAR(lg.graph.weight(lg.id_map.at(u), lg.id_map.at(v)),
                  g.weight(u, v), 1e-5);
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty, testing::Range(0, 12));

// ------------------------------------------- process implementation parity

TEST(ProcessParity, LazyQueueMatchesLiteralRounds) {
  // run() samples thresholds lazily inside a queue-based cascade;
  // run_with_thresholds() is the literal round-based Eq. (2). On the
  // same thresholds they must reach the same verdict. We replicate the
  // lazy run's thresholds by noting run() consumes one uniform per
  // *contacted* node — instead of intercepting that order, run both on
  // grids of fixed thresholds and compare verdicts exhaustively.
  const auto fx = test::ParallelPathFixture::make(2, 2);
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  ForwardProcess proc(inst);
  const InvitationSet full = InvitationSet::full(inst);

  const NodeId n = fx.graph.num_nodes();
  // Thresholds from a small grid: every combination over the 4
  // interesting nodes (t=1, intermediates 3,5; node 2,4 are N_s).
  const double grid[2] = {0.3, 0.9};
  for (int mask = 0; mask < (1 << 3); ++mask) {
    std::vector<double> theta(n, 0.5);
    theta[1] = grid[mask & 1];
    theta[3] = grid[(mask >> 1) & 1];
    theta[5] = grid[(mask >> 2) & 1];
    const auto literal = proc.run_with_thresholds(full, theta);
    // Verdict by first principles: t needs one of its neighbors 3/5 to
    // be a friend and θ_t ≤ 1/2; intermediates 3,5 activate iff
    // θ ≤ 1/2 (their N_s-side neighbor contributes w = 1/2).
    const bool i3 = theta[3] <= 0.5;
    const bool i5 = theta[5] <= 0.5;
    const double t_weight = (i3 ? 0.5 : 0.0) + (i5 ? 0.5 : 0.0);
    const bool expect_t = t_weight >= theta[1] && t_weight > 0.0;
    EXPECT_EQ(literal.target_reached, expect_t) << "mask " << mask;
  }
}

TEST(ProcessParity, StatisticalAgreementOnRandomGraph) {
  Rng rng(31);
  const Graph g = build(gnm_random(30, 70, rng));
  for (NodeId s = 0; s < 30; ++s) {
    if (g.degree(s) == 0) continue;
    for (NodeId t = 0; t < 30; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      const FriendingInstance inst(g, s, t);
      ForwardProcess proc(inst);
      const InvitationSet full = InvitationSet::full(inst);

      const int trials = 30'000;
      int lazy_hits = 0;
      int literal_hits = 0;
      std::vector<double> theta(g.num_nodes());
      for (int i = 0; i < trials; ++i) {
        lazy_hits += proc.run(full, rng).target_reached;
        for (auto& x : theta) x = rng.uniform();
        literal_hits +=
            proc.run_with_thresholds(full, theta).target_reached;
      }
      EXPECT_NEAR(lazy_hits / static_cast<double>(trials),
                  literal_hits / static_cast<double>(trials), 0.02);
      return;
    }
  }
}

}  // namespace
}  // namespace af
