// Tier-1 equivalence grid for the vectorized backward-walk kernels
// (DESIGN.md §9): for every selection strategy — the ScanSelectionSampler
// oracle, both alias index layouts, each at every kernel level of the
// portfolio (scalar, AVX2, AVX-512, NEON — whichever the build and CPU
// have) — bulk sampling must be BYTE-identical to the sequential
// per-sample walk at every lane width {1, 8, 16}, thread count {1, 4},
// and with the index replicated (diffusion/index_replicas). Vector vs
// scalar dispatch is additionally pinned word-for-word at the batch-call
// level, including rng stream consumption, and DKLR results must be
// invariant across all of it. On machines (or builds) without any vector
// leg the forced indexes degrade to the scalar kernel and the grid still
// runs — the assertions then pin scalar-vs-scalar, which keeps the test
// meaningful for the AF_SIMD=OFF CI leg. The same property makes the
// suite the vehicle for CI's forced-env runs: re-running this binary
// under AF_SIMD=avx2|avx512|neon|off pins each leg the runner has.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/pair_sampler.hpp"
#include "diffusion/bulk_sampler.hpp"
#include "diffusion/dklr.hpp"
#include "diffusion/index_replicas.hpp"
#include "diffusion/instance.hpp"
#include "diffusion/realization.hpp"
#include "diffusion/sampling_index.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace af {
namespace {

/// A BA graph big enough that batches hit varied degrees (hubs and
/// leaves) and the AVX2 main loop, its tail, and deep walks all run.
struct Fixture {
  Graph graph;
  NodeId s = 0;
  NodeId t = 2;

  static const Fixture& get() {
    static Fixture fx = [] {
      Fixture f;
      Rng rng(11);
      f.graph = barabasi_albert(3'000, 8, rng)
                    .build(WeightScheme::inverse_degree());
      PairSamplerConfig cfg;
      cfg.estimate_samples = 2'000;
      if (const auto pair = sample_pair(f.graph, cfg, rng)) {
        f.s = pair->s;
        f.t = pair->t;
      }
      return f;
    }();
    return fx;
  }
};

/// The sequential per-sample oracle: sample #i drawn by its own
/// counter-seeded Rng through ReversePathSampler::sample_into — the
/// definition every bulk configuration must reproduce byte for byte.
struct OracleRun {
  std::vector<std::uint8_t> flags;
  std::vector<std::uint64_t> positions;
  std::vector<NodeId> nodes;  // type-1 paths, flattened in stream order
};

OracleRun run_oracle(const FriendingInstance& inst,
                     const SelectionSampler& sel, std::uint64_t count,
                     std::uint64_t root) {
  OracleRun o;
  ReversePathSampler sampler(inst, sel);
  std::vector<NodeId> path;
  for (std::uint64_t i = 0; i < count; ++i) {
    Rng rng(stream_sample_seed(root, i));
    const bool type1 = sampler.sample_into(rng, path);
    o.flags.push_back(type1 ? 1 : 0);
    if (type1) {
      o.positions.push_back(i);
      o.nodes.insert(o.nodes.end(), path.begin(), path.end());
    }
  }
  return o;
}

std::vector<NodeId> flatten(const PathArena& paths) {
  std::vector<NodeId> nodes;
  for (std::size_t k = 0; k < paths.size(); ++k) {
    const auto span = paths[k];
    nodes.insert(nodes.end(), span.begin(), span.end());
  }
  return nodes;
}

/// One strategy's full grid: lanes × pools × prefetch toggles, against
/// its own oracle.
void expect_grid_matches_oracle(const FriendingInstance& inst,
                                const SelectionSampler& sel,
                                std::uint64_t count, std::uint64_t root) {
  const OracleRun oracle = run_oracle(inst, sel, count, root);
  ASSERT_GT(oracle.positions.size(), 0u) << "degenerate fixture";
  ThreadPool pool(4);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{8},
                                  std::size_t{16}}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      // Prefetch sweeps only the widest lane config: it is a pure hint,
      // and one on/off pair per strategy pins that.
      for (const bool prefetch : {true, false}) {
        if (!prefetch && lanes != 16) continue;
        const BulkWalkConfig cfg{.lanes = lanes, .prefetch = prefetch};
        const BulkType1Paths bulk =
            sample_type1_bulk(inst, sel, 0, count, root, p, cfg);
        EXPECT_EQ(bulk.positions, oracle.positions)
            << "lanes=" << lanes << " pool=" << (p ? 4 : 0);
        EXPECT_EQ(flatten(bulk.paths), oracle.nodes)
            << "lanes=" << lanes << " pool=" << (p ? 4 : 0);

        std::vector<std::uint8_t> flags(count);
        sample_type1_flags(inst, sel, 0, count, root, p, flags.data(), cfg);
        EXPECT_EQ(flags, oracle.flags)
            << "lanes=" << lanes << " pool=" << (p ? 4 : 0);
      }
    }
  }
}

// Enough samples that the pooled path really shards (> 4096) and the
// windows cross shard boundaries at both thread counts.
constexpr std::uint64_t kCount = 6'000;
constexpr std::uint64_t kRoot = 97;

/// The concrete levels to force, deduplicated by what each actually
/// resolves to on this build + CPU + env: forcing kAvx512 on a machine
/// without it degrades (by design) to the same kernel a kAvx2 request
/// lands on, and re-running the full grid for an identical kernel buys
/// nothing. kScalar is always first; every distinct vector resolution
/// follows. Under a concrete AF_SIMD env value all requests resolve to
/// that one leg — the forced-env CI runs exercise exactly it.
std::vector<SimdLevel> portfolio_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  std::vector<SimdLevel> resolved = {SimdLevel::kScalar};
  for (const SimdLevel req :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    const SimdLevel got = resolve_simd_level(req);
    bool seen = false;
    for (const SimdLevel r : resolved) seen = seen || r == got;
    if (!seen) {
      levels.push_back(req);
      resolved.push_back(got);
    }
  }
  return levels;
}

TEST(BulkKernelEquivalence, ScanOracleStrategy) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const ScanSelectionSampler scan(fx.graph);
  expect_grid_matches_oracle(inst, scan, kCount, kRoot);
}

TEST(BulkKernelEquivalence, AliasIndexPortfolio) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  // Explicit levels pin each vector kernel wherever the build and CPU
  // have it (each resolves down its family otherwise — the AF_SIMD=OFF
  // CI leg runs scalar only); kAuto may legitimately calibrate to
  // scalar, which would not test the vector legs.
  for (const SimdLevel level : portfolio_levels()) {
    SCOPED_TRACE(to_string(level));
    const SamplingIndex idx(fx.graph, level);
    // Pin the dispatch itself: a forced request must land on exactly
    // what resolve_simd_level says the build + CPU + env allow. Without
    // this a broken CMake gate would silently degrade every vector
    // assertion below to scalar-vs-scalar.
    EXPECT_EQ(idx.simd_level(), resolve_simd_level(level));
    // Forced levels skip the tournament: nothing was measured.
    EXPECT_EQ(idx.calibration(), nullptr);
    expect_grid_matches_oracle(inst, idx, kCount, kRoot);
  }
}

TEST(BulkKernelEquivalence, CompactIndexPortfolio) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  for (const SimdLevel level : portfolio_levels()) {
    SCOPED_TRACE(to_string(level));
    const CompactSamplingIndex idx(fx.graph, level);
    EXPECT_EQ(idx.simd_level(), resolve_simd_level(level));
    EXPECT_EQ(idx.calibration(), nullptr);
    expect_grid_matches_oracle(inst, idx, kCount, kRoot);
  }
}

TEST(BulkKernelEquivalence, BatchCallMatchesScalarWordForWord) {
  // The batch entry point itself: same outputs AND same rng consumption
  // as n scalar draws, for every level of the portfolio and every batch
  // size across each vector main loop, its masked remainder (AVX-512)
  // or scalar tail (AVX2/NEON), n in [0, 17].
  const auto& fx = Fixture::get();
  const std::vector<SimdLevel> levels = portfolio_levels();
  std::vector<std::unique_ptr<const SamplingIndex>> full;
  std::vector<std::unique_ptr<const CompactSamplingIndex>> compact;
  for (const SimdLevel level : levels) {
    full.push_back(std::make_unique<const SamplingIndex>(fx.graph, level));
    compact.push_back(
        std::make_unique<const CompactSamplingIndex>(fx.graph, level));
  }

  Rng pick(123);
  for (std::size_t n = 0; n <= 17; ++n) {
    std::vector<NodeId> cur(n);
    for (auto& v : cur) {
      v = static_cast<NodeId>(pick.uniform_int(fx.graph.num_nodes()));
    }
    const auto run = [&](const SelectionSampler& sel) {
      std::vector<Rng> rngs;
      for (std::size_t i = 0; i < n; ++i) {
        rngs.emplace_back(1000 + static_cast<std::uint64_t>(i));
      }
      std::vector<NodeId> out(n, kNoNode);
      sel.sample_selection_batch(cur.data(), rngs.data(), out.data(), n);
      // The fused prefetch entry must produce the same outputs and
      // advance the rngs identically (prefetch never draws).
      std::vector<Rng> rngs2;
      for (std::size_t i = 0; i < n; ++i) {
        rngs2.emplace_back(1000 + static_cast<std::uint64_t>(i));
      }
      std::vector<NodeId> out2(n, kNoNode);
      sel.sample_selection_batch_prefetch(cur.data(), rngs2.data(),
                                          out2.data(), n);
      EXPECT_EQ(out, out2);
      // Capture post-call stream positions: kernels must consume
      // exactly one word per lane.
      std::vector<std::uint64_t> next_words;
      for (std::size_t i = 0; i < n; ++i) {
        next_words.push_back(rngs[i].next_u64());
        EXPECT_EQ(next_words.back(), rngs2[i].next_u64());
      }
      return std::make_pair(out, next_words);
    };
    const auto ref = run(*full[0]);      // levels[0] is kScalar
    const auto cref = run(*compact[0]);
    for (std::size_t l = 1; l < levels.size(); ++l) {
      EXPECT_EQ(run(*full[l]), ref)
          << "n=" << n << " level=" << to_string(levels[l]);
      EXPECT_EQ(run(*compact[l]), cref)
          << "n=" << n << " level=" << to_string(levels[l]);
    }
  }
}

TEST(BulkKernelEquivalence, DklrInvariantAcrossKernelsAndThreads) {
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  std::vector<std::unique_ptr<const SamplingIndex>> indexes;
  for (const SimdLevel level : portfolio_levels()) {
    indexes.push_back(std::make_unique<const SamplingIndex>(fx.graph, level));
  }
  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.05;
  cfg.max_samples = 200'000;

  Rng rng0(7);
  const DklrResult ref = estimate_pmax_dklr(inst, *indexes[0], rng0, cfg);
  ThreadPool pool(4);
  for (const auto& sel : indexes) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      Rng rng(7);
      const DklrResult res = estimate_pmax_dklr(inst, *sel, rng, cfg, p);
      EXPECT_EQ(res.samples_used, ref.samples_used);
      EXPECT_EQ(res.successes, ref.successes);
      EXPECT_DOUBLE_EQ(res.estimate, ref.estimate);
      EXPECT_EQ(res.samples_drawn, ref.samples_drawn);
    }
  }
}

TEST(BulkKernelEquivalence, ReplicatedIndexBitIdentical) {
  // The NUMA replication path: resolution through IndexReplicas::local()
  // (however many replicas the host yields — one, on single-node CI)
  // must match the fixed-sampler path bit for bit, pooled and inline.
  const auto& fx = Fixture::get();
  const FriendingInstance inst(fx.graph, fx.s, fx.t);
  const IndexReplicas replicas(
      [&]() -> std::unique_ptr<const SelectionSampler> {
        return std::make_unique<const SamplingIndex>(fx.graph);
      });
  ASSERT_GE(replicas.count(), 1u);

  const OracleRun oracle =
      run_oracle(inst, replicas.primary(), kCount, kRoot);
  ThreadPool pool(4, ThreadPoolOptions{.pin_numa = true});
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const BulkType1Paths bulk =
        sample_type1_bulk(inst, replicas, 0, kCount, kRoot, p);
    EXPECT_EQ(bulk.positions, oracle.positions);
    EXPECT_EQ(flatten(bulk.paths), oracle.nodes);

    std::vector<std::uint8_t> flags(kCount);
    sample_type1_flags(inst, replicas, 0, kCount, kRoot, p, flags.data());
    EXPECT_EQ(flags, oracle.flags);
  }

  DklrConfig cfg;
  cfg.epsilon = 0.2;
  cfg.delta = 0.05;
  cfg.max_samples = 200'000;
  Rng rng0(7);
  const DklrResult ref =
      estimate_pmax_dklr(inst, replicas.primary(), rng0, cfg);
  Rng rng1(7);
  const DklrResult rep = estimate_pmax_dklr(inst, replicas, rng1, cfg, &pool);
  EXPECT_EQ(rep.samples_used, ref.samples_used);
  EXPECT_EQ(rep.successes, ref.successes);
  EXPECT_DOUBLE_EQ(rep.estimate, ref.estimate);
}

TEST(SimdDispatch, ParseAfSimdSpellings) {
  // The documented AF_SIMD vocabulary, via the parse hook (the env var
  // itself is latched once per process, so tests exercise the parser).
  EXPECT_EQ(detail::parse_af_simd(nullptr), SimdLevel::kAuto);
  EXPECT_EQ(detail::parse_af_simd(""), SimdLevel::kAuto);
  EXPECT_EQ(detail::parse_af_simd("auto"), SimdLevel::kAuto);
  EXPECT_EQ(detail::parse_af_simd("off"), SimdLevel::kScalar);
  EXPECT_EQ(detail::parse_af_simd("scalar"), SimdLevel::kScalar);
  EXPECT_EQ(detail::parse_af_simd("0"), SimdLevel::kScalar);
  EXPECT_EQ(detail::parse_af_simd("avx2"), SimdLevel::kAvx2);
  EXPECT_EQ(detail::parse_af_simd("avx512"), SimdLevel::kAvx512);
  EXPECT_EQ(detail::parse_af_simd("neon"), SimdLevel::kNeon);
  // Unknown spellings (typos, wrong case) warn once and fall back to
  // auto — never silently to a forced level.
  EXPECT_EQ(detail::parse_af_simd("avx51"), SimdLevel::kAuto);
  EXPECT_EQ(detail::parse_af_simd("AVX2"), SimdLevel::kAuto);
  EXPECT_EQ(detail::parse_af_simd("sse"), SimdLevel::kAuto);
}

TEST(SimdDispatch, ResolveNeverReturnsAutoOrUnavailable) {
  for (const SimdLevel req :
       {SimdLevel::kAuto, SimdLevel::kScalar, SimdLevel::kAvx2,
        SimdLevel::kAvx512, SimdLevel::kNeon}) {
    const SimdLevel got = resolve_simd_level(req);
    EXPECT_NE(got, SimdLevel::kAuto) << to_string(req);
    EXPECT_TRUE(simd_level_available(got)) << to_string(req);
  }
}

TEST(SimdDispatch, TournamentVerdictIsAuditedAndNeverSlowerThanScalar) {
  // kAuto under a genuinely-auto environment runs the N-way tournament;
  // its verdict must be internally consistent: the dispatched level is
  // the recorded winner, scalar was among the candidates, and the
  // winner never measured slower than scalar (the 10%-bias acceptance
  // criterion). When the env forces a level (CI's AF_SIMD=... runs) or
  // no vector leg exists, no tournament runs and calibration() is null.
  const auto& fx = Fixture::get();
  const SamplingIndex idx(fx.graph, SimdLevel::kAuto);
  const bool tournament_ran =
      simd_env_request() == SimdLevel::kAuto &&
      resolve_simd_level(SimdLevel::kAuto) != SimdLevel::kScalar;
  if (!tournament_ran) {
    EXPECT_EQ(idx.calibration(), nullptr);
    return;
  }
  const KernelCalibration* calib = idx.calibration();
  ASSERT_NE(calib, nullptr);
  EXPECT_EQ(calib->winner, idx.simd_level());
  ASSERT_GE(calib->timings.size(), 2u);  // scalar + ≥1 vector leg
  EXPECT_EQ(calib->timings[0].level, SimdLevel::kScalar);
  double scalar_ns = 0.0;
  double winner_ns = 0.0;
  for (const KernelTiming& t : calib->timings) {
    EXPECT_GT(t.ns_per_step, 0.0) << to_string(t.level);
    EXPECT_TRUE(simd_level_available(t.level)) << to_string(t.level);
    if (t.level == SimdLevel::kScalar) scalar_ns = t.ns_per_step;
    if (t.level == calib->winner) winner_ns = t.ns_per_step;
  }
  EXPECT_LE(winner_ns, scalar_ns)
      << "kAuto must never dispatch to a kernel that measured slower "
         "than scalar";

  // Memoization: a second kAuto construction of the same flavor and
  // size class must reuse the identical cache entry — same address,
  // no re-measurement.
  const SamplingIndex again(fx.graph, SimdLevel::kAuto);
  EXPECT_EQ(again.calibration(), calib);
  EXPECT_EQ(again.simd_level(), idx.simd_level());

  // The compact flavor calibrates separately (different slot layout ⇒
  // different memory behavior ⇒ its own cache key).
  const CompactSamplingIndex cidx(fx.graph, SimdLevel::kAuto);
  const KernelCalibration* ccalib = cidx.calibration();
  ASSERT_NE(ccalib, nullptr);
  EXPECT_NE(ccalib, calib);
  EXPECT_EQ(ccalib->winner, cidx.simd_level());
}

}  // namespace
}  // namespace af
