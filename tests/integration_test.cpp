// End-to-end pipeline tests on realistic (small) social graphs: the full
// paper protocol — sample pairs, run RAF, evaluate against HD/SP at equal
// size — plus cross-component consistency checks.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "core/pair_sampler.hpp"
#include "core/raf.hpp"
#include "core/vmax.hpp"
#include "diffusion/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace af {
namespace {

struct Pipeline {
  Graph graph;
  std::vector<SampledPair> pairs;
};

Pipeline make_pipeline(std::uint64_t seed, std::size_t pair_count) {
  Rng rng(seed);
  Pipeline p{
      barabasi_albert(800, 4, rng).build(WeightScheme::inverse_degree()),
      {}};
  PairSamplerConfig cfg;
  cfg.estimate_samples = 2'000;
  p.pairs = sample_pairs(p.graph, pair_count, cfg, rng);
  return p;
}

TEST(Integration, RafBeatsOrMatchesBaselinesAtEqualSize) {
  const Pipeline p = make_pipeline(101, 4);
  ASSERT_GE(p.pairs.size(), 2u);
  Rng rng(5);

  RafConfig cfg;
  cfg.alpha = 0.3;
  cfg.epsilon = 0.03;
  cfg.big_n = 1000;
  cfg.max_realizations = 30'000;
  cfg.pmax_max_samples = 300'000;
  const RafAlgorithm raf(cfg);

  RunningStats raf_f, hd_f, sp_f;
  for (const auto& pair : p.pairs) {
    const FriendingInstance inst(p.graph, pair.s, pair.t);
    const RafResult res = raf.run(inst, rng);
    if (res.invitation.empty()) continue;
    const std::size_t k = res.invitation.size();

    MonteCarloEvaluator mc(inst);
    const std::uint64_t samples = 30'000;
    raf_f.add(mc.estimate_f(res.invitation, samples, rng).estimate());
    hd_f.add(
        mc.estimate_f(high_degree_invitation(inst, k), samples, rng)
            .estimate());
    sp_f.add(
        mc.estimate_f(shortest_path_invitation(inst, k), samples, rng)
            .estimate());
  }
  ASSERT_GT(raf_f.count(), 0u);
  // The paper's headline shape (Fig. 3): RAF ≥ SP and RAF ≥ HD on
  // average at equal invitation size. Allow MC slack.
  EXPECT_GE(raf_f.mean() + 0.01, sp_f.mean());
  EXPECT_GE(raf_f.mean() + 0.01, hd_f.mean());
}

TEST(Integration, RafReachesRequestedShareOfPmax) {
  const Pipeline p = make_pipeline(202, 3);
  ASSERT_GE(p.pairs.size(), 1u);
  Rng rng(7);

  RafConfig cfg;
  cfg.alpha = 0.5;
  cfg.epsilon = 0.05;
  cfg.big_n = 1000;
  cfg.max_realizations = 40'000;
  const RafAlgorithm raf(cfg);

  for (const auto& pair : p.pairs) {
    const FriendingInstance inst(p.graph, pair.s, pair.t);
    const RafResult res = raf.run(inst, rng);
    if (res.invitation.empty()) continue;
    MonteCarloEvaluator mc(inst);
    const double pmax = mc.estimate_pmax(60'000, rng).estimate();
    const double f = mc.estimate_f(res.invitation, 60'000, rng).estimate();
    // Guarantee: f ≥ (α−ε)·p_max, plus Monte-Carlo slack on both sides.
    EXPECT_GE(f, (cfg.alpha - cfg.epsilon) * pmax - 0.02)
        << "pair (" << pair.s << "," << pair.t << ")";
  }
}

TEST(Integration, RafInvitationWithinVmaxAndSmaller) {
  const Pipeline p = make_pipeline(303, 3);
  ASSERT_GE(p.pairs.size(), 1u);
  Rng rng(9);

  RafConfig cfg;
  cfg.alpha = 0.1;
  cfg.epsilon = 0.01;
  cfg.big_n = 1000;
  cfg.max_realizations = 30'000;
  const RafAlgorithm raf(cfg);

  for (const auto& pair : p.pairs) {
    const FriendingInstance inst(p.graph, pair.s, pair.t);
    const auto vmax = compute_vmax(inst);
    const RafResult res = raf.run(inst, rng);
    if (res.invitation.empty()) continue;
    // Table II's phenomenon: |I_RAF| well below |V_max|; and containment
    // holds structurally (every t(g) ⊆ V_max).
    EXPECT_LE(res.invitation.size(), vmax.size());
    for (NodeId v : res.invitation.members()) {
      EXPECT_TRUE(std::binary_search(vmax.begin(), vmax.end(), v));
    }
  }
}

TEST(Integration, ForwardAndReverseEnginesAgreeOnRealGraph) {
  const Pipeline p = make_pipeline(404, 2);
  ASSERT_GE(p.pairs.size(), 1u);
  Rng rng(11);
  const auto& pair = p.pairs.front();
  const FriendingInstance inst(p.graph, pair.s, pair.t);

  const InvitationSet inv = high_degree_invitation(inst, 25);
  MonteCarloEvaluator mc(inst);
  const double fwd =
      mc.estimate_f(inv, 40'000, rng, McEngine::kForward).estimate();
  const double rev =
      mc.estimate_f(inv, 40'000, rng, McEngine::kReverse).estimate();
  EXPECT_NEAR(fwd, rev, 0.015);
}

TEST(Integration, HigherAlphaCostsMoreInvitations) {
  const Pipeline p = make_pipeline(505, 2);
  ASSERT_GE(p.pairs.size(), 1u);
  Rng rng(13);
  const auto& pair = p.pairs.front();
  const FriendingInstance inst(p.graph, pair.s, pair.t);

  auto run_alpha = [&](double alpha) {
    RafConfig cfg;
    cfg.alpha = alpha;
    cfg.epsilon = alpha / 10;
    cfg.big_n = 1000;
    cfg.max_realizations = 20'000;
    Rng local(99);
    return RafAlgorithm(cfg).run(inst, local).invitation.size();
  };
  const auto low = run_alpha(0.1);
  const auto high = run_alpha(0.9);
  EXPECT_LE(low, high + 1);  // near-monotone; identical sample noise only
}

}  // namespace
}  // namespace af
