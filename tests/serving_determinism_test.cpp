// The serving-layer determinism battery (DESIGN.md §10): plan_async
// answers must be byte-identical to sequential plan() for the same specs
// — across worker counts, shuffled submission orders, and coalesced
// duplicate-pair submissions. The counter-stream contract makes a
// query's answer a pure function of (graph, options, spec); this suite
// pins that the async layer's queueing, ordering, and coalescing never
// leak into results.
#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"
#include "util/rng.hpp"

namespace af {
namespace {

/// A small BA graph with several valid (s,t) pairs — big enough that
/// queries do real sampling work, small enough for tier1.
struct ServingFixture {
  Graph graph;
  std::vector<std::pair<NodeId, NodeId>> pairs;

  static const ServingFixture& get() {
    static ServingFixture fx = [] {
      ServingFixture f;
      Rng rng(11);
      f.graph = barabasi_albert(60, 3, rng).build(
          WeightScheme::inverse_degree());
      for (NodeId s = 0; s < f.graph.num_nodes() && f.pairs.size() < 4;
           ++s) {
        const NodeId t = f.graph.num_nodes() - 1 - s;
        if (s == t || f.graph.has_edge(s, t)) continue;
        f.pairs.emplace_back(s, t);
      }
      return f;
    }();
    return fx;
  }
};

PlannerOptions serving_options(std::size_t workers) {
  PlannerOptions opts;
  opts.threads = 2;
  opts.async_workers = workers;
  opts.pmax_max_samples = 50'000;
  return opts;
}

MinimizeSpec small_minimize(double alpha) {
  MinimizeSpec spec;
  spec.alpha = alpha;
  spec.epsilon = alpha / 10.0;
  spec.big_n = 1000.0;
  spec.max_realizations = 4'000;
  return spec;
}

/// The workload: mixed modes over several pairs, including exact
/// duplicates (same pair, equal mode — the coalescing key) and distinct
/// priorities, so shuffled submission exercises the dequeue order too.
std::vector<QuerySpec> make_workload() {
  const auto& fx = ServingFixture::get();
  std::vector<QuerySpec> specs;
  for (std::size_t p = 0; p < fx.pairs.size(); ++p) {
    const auto [s, t] = fx.pairs[p];
    QuerySpec min{s, t, small_minimize(0.2 + 0.1 * static_cast<double>(p))};
    min.priority = static_cast<std::int32_t>(p) - 1;
    specs.push_back(min);
    specs.push_back(
        {s, t, MaximizeSpec{.budget = 4, .realizations = 3'000}});
  }
  // Exact duplicates of the first two queries: coalescable submissions.
  specs.push_back(specs[0]);
  specs.push_back(specs[1]);
  specs.push_back(specs[1]);
  return specs;
}

/// Every deterministic field of a PlanResult. Timings are measurements,
/// not results; everything else must match bit-for-bit.
void expect_identical(const PlanResult& got, const PlanResult& want,
                      const std::string& context) {
  EXPECT_EQ(got.status, want.status) << context;
  EXPECT_EQ(got.message, want.message) << context;
  EXPECT_EQ(got.invitation.members(), want.invitation.members()) << context;
  EXPECT_EQ(got.sample_coverage, want.sample_coverage) << context;
  EXPECT_EQ(got.diag.l_star, want.diag.l_star) << context;
  EXPECT_EQ(got.diag.l_used, want.diag.l_used) << context;
  EXPECT_EQ(got.diag.type1_count, want.diag.type1_count) << context;
  EXPECT_EQ(got.diag.coverage_target, want.diag.coverage_target) << context;
  EXPECT_EQ(got.diag.covered, want.diag.covered) << context;
  EXPECT_EQ(got.diag.vmax_size, want.diag.vmax_size) << context;
  EXPECT_EQ(got.diag.pmax.estimate, want.diag.pmax.estimate) << context;
  EXPECT_EQ(got.diag.pmax.samples_used, want.diag.pmax.samples_used)
      << context;
  EXPECT_EQ(got.diag.pmax.successes, want.diag.pmax.successes) << context;
  EXPECT_EQ(got.diag.target_unreachable, want.diag.target_unreachable)
      << context;
  EXPECT_EQ(got.diag.pmax_below_detection, want.diag.pmax_below_detection)
      << context;
}

TEST(ServingDeterminism, AsyncMatchesSequentialAcrossThreadsAndOrders) {
  const auto& fx = ServingFixture::get();
  ASSERT_GE(fx.pairs.size(), 3u);
  const std::vector<QuerySpec> specs = make_workload();

  // The oracle: a fresh planner answering sequentially.
  std::vector<PlanResult> reference;
  {
    Planner planner(fx.graph, serving_options(1));
    for (const QuerySpec& q : specs) reference.push_back(planner.plan(q));
  }
  // The workload must exercise real successes, or the test proves little.
  ASSERT_GT(std::count_if(reference.begin(), reference.end(),
                          [](const PlanResult& r) { return r.ok(); }),
            0);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (std::uint64_t shuffle_seed : {0u, 1u, 2u}) {
      // Shuffled submission order, deterministic per seed.
      std::vector<std::size_t> order(specs.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      Rng rng(shuffle_seed);
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(rng.uniform_int(i))]);
      }

      Planner planner(fx.graph, serving_options(workers));
      std::vector<std::future<PlanResult>> futures(specs.size());
      for (std::size_t idx : order) {
        futures[idx] = planner.plan_async(specs[idx]);
      }
      for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(futures[i].valid());
        const PlanResult got = futures[i].get();
        expect_identical(got, reference[i],
                         "spec " + std::to_string(i) + ", workers " +
                             std::to_string(workers) + ", order seed " +
                             std::to_string(shuffle_seed));
      }
      // Accounting: everything submitted was served — as an execution or
      // as a coalesced duplicate of one — and nothing was rejected (the
      // default queue depth dwarfs this workload).
      const ServingStats stats = planner.serving_stats();
      EXPECT_EQ(stats.submitted, specs.size());
      EXPECT_EQ(stats.completed + stats.coalesced, specs.size());
      EXPECT_EQ(stats.rejected_overloaded, 0u);
      EXPECT_EQ(stats.expired_deadline, 0u);
      EXPECT_EQ(stats.queued, 0u);
    }
  }
}

TEST(ServingDeterminism, RepeatedAsyncSubmissionIsStableAcrossPlanners) {
  // Two independently-constructed planners serving the same workload
  // through plan_async agree result-for-result — the serving layer adds
  // no hidden per-planner state to answers.
  const auto& fx = ServingFixture::get();
  const std::vector<QuerySpec> specs = make_workload();

  auto serve_all = [&](std::size_t workers) {
    Planner planner(fx.graph, serving_options(workers));
    std::vector<std::future<PlanResult>> futures;
    futures.reserve(specs.size());
    for (const QuerySpec& q : specs) {
      futures.push_back(planner.plan_async(q));
    }
    std::vector<PlanResult> results;
    results.reserve(specs.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  const std::vector<PlanResult> a = serve_all(4);
  const std::vector<PlanResult> b = serve_all(2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i], b[i], "spec " + std::to_string(i));
  }
}

}  // namespace
}  // namespace af
